"""Named, reproducible random-number streams.

Every stochastic component in the simulation (arrival process, key sampler,
each server's fluctuation, ...) draws from its own ``numpy.random.Generator``.
Streams are derived from one experiment seed by *name*, so

* the whole experiment is reproducible from a single integer, and
* adding a new consumer does not perturb the draws of existing ones (unlike
  sharing one generator).

Names are hashed through ``SeedSequence(root, name_bytes)`` which gives
statistically independent child streams.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Default pre-draw block length for :class:`BatchedStream`.
DEFAULT_BATCH_SIZE = 1024


class BatchedStream:
    """Serve scalar draws from pre-drawn numpy blocks, bit-identically.

    numpy Generators consume the underlying bitstream identically for
    ``dist(size=n)`` and for ``n`` successive scalar ``dist()`` calls, so a
    consumer that only ever draws from *one* distribution family sees the
    exact same value sequence whether it draws scalars or is served from a
    pre-drawn block.  That equivalence breaks the moment two families
    interleave on one generator (the block would consume bits the other
    family was due to get), so a stream locks itself to the family of its
    first draw and raises loudly on any other use.  Streams that genuinely
    interleave families (e.g. the open-loop arrival stream: exponential
    gaps + uniform weight picks) must stay on a raw generator.

    ``block_size=0`` bypasses batching entirely: every call is a scalar
    draw on the wrapped generator, which makes the knob a pure performance
    switch — results are identical either way.

    Supported draws (matching ``numpy.random.Generator`` semantics):
    ``random()``, ``uniform(low, high)`` (shares the uniform family),
    ``exponential(scale)`` / ``standard_exponential()`` (one family; the
    scale is applied per-draw so it may vary call to call), and
    ``integers(low[, high])`` (locked to the first call's bounds).
    """

    __slots__ = ("_rng", "block_size", "_family", "_block", "_pos", "_bounds")

    def __init__(
        self,
        rng: np.random.Generator,
        block_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if block_size < 0:
            raise ConfigurationError(
                f"block_size must be >= 0, got {block_size}"
            )
        self._rng = rng
        self.block_size = block_size
        self._family: Optional[str] = None
        self._block: List = []
        self._pos = 0
        self._bounds: Optional[Tuple[int, Optional[int]]] = None

    # -- internal ------------------------------------------------------
    def _lock(self, family: str) -> None:
        if self._family is None:
            self._family = family
        elif self._family != family:
            raise ConfigurationError(
                f"BatchedStream is locked to {self._family!r} draws but got a "
                f"{family!r} draw; mixed-family streams would consume the "
                "bitstream in a different order than scalar draws — use a raw "
                "generator (see docs/SIMULATOR.md, 'Batched RNG streams')"
            )

    def _refill(self) -> None:
        size = self.block_size
        if self._family == "uniform":
            self._block = self._rng.random(size=size).tolist()
        elif self._family == "exponential":
            self._block = self._rng.standard_exponential(size=size).tolist()
        else:  # integers
            low, high = self._bounds  # type: ignore[misc]
            self._block = self._rng.integers(low, high, size=size).tolist()
        self._pos = 0

    # -- draws ---------------------------------------------------------
    def random(self) -> float:
        """Uniform in [0, 1); equivalent to ``Generator.random()``."""
        self._lock("uniform")
        if self.block_size == 0:
            return float(self._rng.random())
        pos = self._pos
        if pos >= len(self._block):
            self._refill()
            pos = 0
        self._pos = pos + 1
        return self._block[pos]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform in [low, high); equivalent to ``Generator.uniform()``."""
        return low + (high - low) * self.random()

    def standard_exponential(self) -> float:
        """Equivalent to ``Generator.standard_exponential()``."""
        self._lock("exponential")
        if self.block_size == 0:
            return float(self._rng.standard_exponential())
        pos = self._pos
        if pos >= len(self._block):
            self._refill()
            pos = 0
        self._pos = pos + 1
        return self._block[pos]

    def exponential(self, scale: float = 1.0) -> float:
        """Equivalent to ``Generator.exponential(scale)``.

        numpy computes ``scale * standard_exponential()`` internally, so
        applying the scale per-draw keeps values exact while letting it
        vary between draws (fluctuating service times).
        """
        return scale * self.standard_exponential()

    def integers(self, low: int, high: Optional[int] = None) -> int:
        """Equivalent to ``int(Generator.integers(low, high))``.

        The bounds are part of the family lock: Lemire-style bounded
        generation consumes a bound-dependent number of bits, so a block
        is only bitstream-equivalent to scalar draws with the same bounds.
        """
        self._lock("integers")
        bounds = (low, high)
        if self._bounds is None:
            self._bounds = bounds
        elif self._bounds != bounds:
            raise ConfigurationError(
                f"BatchedStream is locked to integers{self._bounds!r} but got "
                f"integers{bounds!r}; varying bounds consume the bitstream "
                "differently per draw — use a raw generator"
            )
        if self.block_size == 0:
            return int(self._rng.integers(low, high))
        pos = self._pos
        if pos >= len(self._block):
            self._refill()
            pos = 0
        self._pos = pos + 1
        return self._block[pos]

    def spawn(self) -> "BatchedStream":
        """Derive an independent child stream (same block size).

        Children come from the underlying generator's ``SeedSequence`` spawn
        counter, which is independent of how many values were drawn — so a
        batched parent (which pre-draws ahead) spawns exactly the same
        children as a scalar parent.
        """
        return BatchedStream(self._rng.spawn(1)[0], self.block_size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BatchedStream family={self._family} block={self.block_size} "
            f"served={self._pos}/{len(self._block)}>"
        )


class RngRegistry:
    """Factory of named child generators derived from one root seed."""

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}
        self._batched: Dict[str, BatchedStream] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream within a registry.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Stable 32-bit digest of the name keeps spawn keys deterministic
            # across processes and Python builds (hash() is salted).
            digest = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=(self.seed, digest))
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def batched(
        self, name: str, block_size: int = DEFAULT_BATCH_SIZE
    ) -> BatchedStream:
        """Return a :class:`BatchedStream` over the stream for ``name``.

        Cached per name: the wrapper owns the generator's cursor once blocks
        are pre-drawn, so handing out two wrappers (or a wrapper plus the
        raw generator) for the same name would interleave consumers and
        break scalar-equivalence.  Asking again with a different block size
        is therefore an error.
        """
        wrapper = self._batched.get(name)
        if wrapper is None:
            wrapper = BatchedStream(self.stream(name), block_size)
            self._batched[name] = wrapper
        elif wrapper.block_size != block_size:
            raise ConfigurationError(
                f"stream {name!r} already batched with block_size="
                f"{wrapper.block_size}, requested {block_size}"
            )
        return wrapper

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"


def stream_from_seed(seed: int, name: str) -> np.random.Generator:
    """One named stream derived from ``seed``, without keeping a registry.

    Convenience for entry points that accept ``rng=None`` plus a ``seed``:
    the fallback generator is identical to ``RngRegistry(seed).stream(name)``,
    so ad-hoc callers and the full experiment harness draw from the same
    deterministic universe.
    """
    return RngRegistry(seed).stream(name)


def batched_from_seed(
    seed: int, name: str, block_size: int = DEFAULT_BATCH_SIZE
) -> BatchedStream:
    """Batched counterpart of :func:`stream_from_seed`.

    Wraps the identical named generator, so batched ad-hoc callers draw the
    same values as ``RngRegistry(seed).batched(name, block_size)``.
    """
    return BatchedStream(stream_from_seed(seed, name), block_size)


#: Anything hot-path components accept as a draw source: a raw generator
#: (tests, ad-hoc callers) or a batched wrapper (the experiment harness).
DrawSource = Union[np.random.Generator, BatchedStream]
