"""Scenario construction: wire a full simulated system from a config.

One scenario = topology + network devices + key-value store + workload +
(for NetRS schemes) operators, monitors and a controller with a deployed
Replica Selection Plan.  Everything is seeded from the config's single seed
through named RNG streams, so scenarios are reproducible and two schemes
with the same seed see the same deployment, fluctuations and workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.controller import NetRSController
from repro.core.monitor import NetRSMonitor
from repro.core.operator_node import NetRSOperator
from repro.core.placement.problem import build_operator_specs, estimate_traffic
from repro.core.plan import SelectionPlan, TrafficGroup, make_traffic_groups
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, parse_fault_schedule
from repro.kvstore.client import CompletionTracker, KVClient, RedundancyPolicy
from repro.kvstore.fluctuation import BimodalFluctuation, StableService
from repro.kvstore.hashing import shared_ring
from repro.kvstore.membership import ChurnableRing, ChurnCoordinator
from repro.kvstore.server import KVServer
from repro.kvstore.workload import (
    ClosedLoopWorkload,
    DemandWeights,
    OpenLoopWorkload,
    ZipfSampler,
)
from repro.network.accelerator import Accelerator
from repro.network.background import BackgroundTraffic
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.host import Host
from repro.network.switch import ProgrammableSwitch
from repro.network.topology import Topology
from repro.selection.registry import create_selector
from repro.sim.backend import Backend
from repro.sim.backend import resolve as resolve_backend
from repro.sim.core import Environment
from repro.sim.probes import LatencyRecorder
from repro.sim.rng import RngRegistry


@dataclass
class Scenario:
    """A fully wired simulated system, ready to run."""

    config: ExperimentConfig
    env: Environment
    rng: RngRegistry
    topology: Topology
    network: Network
    switches: Dict[str, ProgrammableSwitch]
    hosts: Dict[str, Host]
    servers: Dict[str, KVServer]
    clients: List[KVClient]
    client_hosts: List[str]
    server_hosts: List[str]
    ring: ConsistentHashRing
    recorder: LatencyRecorder
    tracker: CompletionTracker
    workload: Union[OpenLoopWorkload, ClosedLoopWorkload]
    weights: DemandWeights
    write_recorder: Optional[LatencyRecorder] = None
    background: Optional[BackgroundTraffic] = None
    groups: List[TrafficGroup] = field(default_factory=list)
    controller: Optional[NetRSController] = None
    plan: Optional[SelectionPlan] = None
    faults: Optional[FaultInjector] = None
    churn: Optional[ChurnCoordinator] = None
    backend: Optional[Backend] = None  # resolved event-core backend

    def accelerators(self) -> List[Accelerator]:
        """All accelerators present in the scenario."""
        return [
            s.accelerator for s in self.switches.values() if s.accelerator is not None
        ]


def build_scenario(config: ExperimentConfig) -> Scenario:
    """Construct every component of an experiment from its configuration."""
    config.validate()
    backend = resolve_backend(config.engine_backend)
    env = Environment(compaction=config.engine_compaction)
    rng = RngRegistry(config.seed)
    topology = build_fat_tree(config.fat_tree_k)
    network = Network(
        env,
        topology,
        switch_link_latency=config.switch_link_latency,
        host_link_latency=config.host_link_latency,
        link_bandwidth=config.link_bandwidth,
        track_links=config.track_link_stats,
        route_cache_size=config.route_cache_size,
    )

    client_hosts, server_hosts = _assign_roles(config, topology, rng)
    if config.churn_schedule:
        # Mutable membership: never the memoized shared ring.
        ring = ChurnableRing(
            server_hosts,
            replication_factor=config.replication_factor,
            virtual_nodes=config.virtual_nodes,
        )
    else:
        ring = shared_ring(
            server_hosts,
            replication_factor=config.replication_factor,
            virtual_nodes=config.virtual_nodes,
        )

    switches = _build_switches(config, env, network, topology)
    hosts = {h.name: Host(h.name, network) for h in topology.hosts}
    servers = _build_servers(config, env, rng, hosts, server_hosts)

    recorder = LatencyRecorder()
    write_recorder = LatencyRecorder()
    tracker = CompletionTracker(config.total_requests)
    clients = _build_clients(
        config, env, rng, hosts, client_hosts, ring, recorder, tracker,
        write_recorder,
    )

    weights = DemandWeights(
        config.n_clients,
        skew=config.demand_skew,
        hot_fraction=config.hot_fraction,
        rng=rng.stream("workload.skew") if config.demand_skew is not None else None,
    )
    # Single-family draw sites are served from pre-drawn blocks (pure perf
    # knob, bit-identical — see docs/SIMULATOR.md "Batched RNG streams").
    # The open-loop arrival stream interleaves families and must stay raw.
    batch = config.rng_batch_size
    sampler = ZipfSampler(
        config.key_space, config.zipf_exponent, rng.batched("workload.keys", batch)
    )
    if config.workload_mode == "closed":
        workload = ClosedLoopWorkload(
            env,
            clients=clients,
            key_sampler=sampler,
            rng=rng.batched("workload.arrivals", batch),
            total_requests=config.total_requests,
            window=config.closed_window,
            think_time=config.think_time,
            warmup_requests=config.warmup_requests(),
        )
    else:
        workload = OpenLoopWorkload(
            env,
            rate=config.arrival_rate(),
            clients=clients,
            weights=weights,
            key_sampler=sampler,
            rng=rng.stream("workload.arrivals"),
            total_requests=config.total_requests,
            warmup_requests=config.warmup_requests(),
            write_fraction=config.write_fraction,
        )

    background = None
    if config.background_traffic_rate > 0:
        busy = set(client_hosts) | set(server_hosts)
        idle_hosts = [hosts[h.name] for h in topology.hosts if h.name not in busy]
        background = BackgroundTraffic(
            env,
            network,
            idle_hosts,
            rate=config.background_traffic_rate,
            packet_size=config.background_packet_size,
            rng=rng.stream("background"),
        )

    scenario = Scenario(
        config=config,
        env=env,
        rng=rng,
        topology=topology,
        network=network,
        switches=switches,
        hosts=hosts,
        servers=servers,
        clients=clients,
        client_hosts=client_hosts,
        server_hosts=server_hosts,
        ring=ring,
        recorder=recorder,
        tracker=tracker,
        workload=workload,
        weights=weights,
        write_recorder=write_recorder,
        background=background,
        backend=backend,
    )
    if config.netrs:
        _wire_netrs(scenario)
    if backend.compiled:
        # Route the three compiled loops through the backend's kernels:
        # trunk timing + settlement on the fabric, C3 scoring on every
        # client-side selector that supports it.  Operator (RSNode)
        # selectors are covered by the algorithm factory in _wire_netrs,
        # which also handles mid-run deployments.
        network.use_backend(backend)
        for client in clients:
            if hasattr(client.selector, "use_kernel"):
                client.selector.use_kernel(backend.kernels)
    schedule = FaultSchedule()
    if config.fault_schedule:
        # Fault runs take per-hop forwarding throughout: collapsed trunks
        # commit to a path at send time and would carry packets over links
        # that die while they are in flight.
        network.disable_trunking()
        for event in parse_fault_schedule(config.fault_schedule):
            schedule.add(event)
    if config.churn_schedule:
        # Graceful churn keeps trunking: no link or server ever goes dark,
        # so collapsed trunk timing stays valid.  Migration traffic rides
        # the same fabric as foreground requests.
        scenario.churn = ChurnCoordinator(
            env, ring, servers, value_size=config.value_size
        )
        for event in parse_fault_schedule(config.churn_schedule):
            schedule.add(event)
    if len(schedule):
        # One injector replays the merged timeline (ties break by insertion
        # order: fault events first, then churn).  Wired after NetRS so
        # RSNode targets (including "busiest") resolve against the deployed
        # plan.  Symbolic server#i/client#i targets index the sorted role
        # lists, which are seeded-random per run.
        scenario.faults = FaultInjector(
            env,
            schedule,
            network=network,
            servers=servers,
            server_hosts=server_hosts,
            client_hosts=client_hosts,
            controller=scenario.controller,
            churn=scenario.churn,
        )
        scenario.faults.arm()
    return scenario


# ----------------------------------------------------------------------
# Build helpers
# ----------------------------------------------------------------------
def _assign_roles(
    config: ExperimentConfig, topology: Topology, rng: RngRegistry
) -> tuple:
    """Randomly deploy clients and servers, one role per host (section V-A)."""
    host_names = [h.name for h in topology.hosts]
    order = rng.stream("placement").permutation(len(host_names))
    shuffled = [host_names[i] for i in order]
    clients = sorted(shuffled[: config.n_clients])
    servers = sorted(
        shuffled[config.n_clients : config.n_clients + config.n_servers]
    )
    return clients, servers


def _build_switches(
    config: ExperimentConfig,
    env: Environment,
    network: Network,
    topology: Topology,
) -> Dict[str, ProgrammableSwitch]:
    switches: Dict[str, ProgrammableSwitch] = {}
    if config.netrs:
        specs = build_operator_specs(
            topology,
            accelerator_cores=config.accelerator_cores,
            accelerator_service_time=config.accelerator_service_time,
            max_utilization=config.max_accelerator_utilization,
            work_per_request=config.work_per_request,
        )
        spec_by_switch = {spec.switch: spec for spec in specs}
        for node in topology.switches:
            spec = spec_by_switch[node.name]
            accelerator = Accelerator(
                env,
                f"acc:{node.name}",
                cores=config.accelerator_cores,
                service_time=config.accelerator_service_time,
                link_delay=config.accelerator_link_delay,
            )
            switches[node.name] = ProgrammableSwitch(
                node.name,
                network,
                operator_id=spec.operator_id,
                accelerator=accelerator,
            )
    else:
        for node in topology.switches:
            switches[node.name] = ProgrammableSwitch(node.name, network)
    return switches


def _build_servers(
    config: ExperimentConfig,
    env: Environment,
    rng: RngRegistry,
    hosts: Dict[str, Host],
    server_hosts: List[str],
) -> Dict[str, KVServer]:
    servers: Dict[str, KVServer] = {}
    batch = config.rng_batch_size
    for name in server_hosts:
        if config.fluctuation_range > 1.0:
            model = BimodalFluctuation(
                base_service_time=config.mean_service_time,
                range_parameter=config.fluctuation_range,
                interval=config.fluctuation_interval,
                rng=rng.batched(f"fluctuation.{name}", batch),
            )
        else:
            model = StableService(config.mean_service_time)
        servers[name] = KVServer(
            env,
            hosts[name],
            service_model=model,
            parallelism=config.parallelism,
            rng=rng.batched(f"service.{name}", batch),
            value_size=config.value_size,
            rate_ewma_alpha=config.ewma_alpha,
        )
    return servers


def _build_clients(
    config: ExperimentConfig,
    env: Environment,
    rng: RngRegistry,
    hosts: Dict[str, Host],
    client_hosts: List[str],
    ring: ConsistentHashRing,
    recorder: LatencyRecorder,
    tracker: CompletionTracker,
    write_recorder: Optional[LatencyRecorder] = None,
) -> List[KVClient]:
    redundancy = (
        RedundancyPolicy(
            percentile=config.redundancy_percentile,
            min_samples=config.redundancy_min_samples,
        )
        if config.redundancy_enabled
        else None
    )
    clients: List[KVClient] = []
    for name in client_hosts:
        selector = create_selector(
            config.algorithm,
            concurrency_weight=config.n_clients,
            prior_service_rate=config.prior_service_rate(),
            rng=rng.stream(f"selector.client.{name}"),
        )
        clients.append(
            KVClient(
                env,
                hosts[name],
                ring=ring,
                selector=selector,
                recorder=recorder,
                tracker=tracker,
                netrs=config.netrs,
                redundancy=redundancy,
                rng=(
                    rng.batched(f"redundancy.{name}", config.rng_batch_size)
                    if redundancy
                    else None
                ),
                write_recorder=write_recorder,
                write_quorum=config.write_quorum,
                read_quorum=config.effective_read_quorum(),
                request_timeout=config.request_timeout,
                max_retries=config.max_retries,
            )
        )
    return clients


def _wire_netrs(scenario: Scenario) -> None:
    """Create groups, monitors, operators, controller; deploy the first RSP."""
    config = scenario.config
    topology = scenario.topology
    groups = make_traffic_groups(
        topology, scenario.client_hosts, config.group_granularity
    )
    scenario.groups = groups
    group_of_host: Dict[str, int] = {}
    for group in groups:
        for host in group.hosts:
            group_of_host[host] = group.group_id

    # Monitors on every ToR that fronts at least one client.
    monitors: Dict[str, NetRSMonitor] = {}
    for group in groups:
        if group.tor in monitors:
            continue
        switch = scenario.switches[group.tor]
        assert switch.marker is not None
        monitor = NetRSMonitor(
            scenario.env,
            marker=switch.marker,
            group_lookup=group_of_host.get,
        )
        switch.monitor = monitor
        monitors[group.tor] = monitor

    operators: Dict[int, NetRSOperator] = {}
    for switch in scenario.switches.values():
        if switch.accelerator is None:
            raise ConfigurationError(
                f"NetRS scheme requires an accelerator on {switch.name}"
            )
        spec = _spec_of(scenario, switch)
        operators[spec.operator_id] = NetRSOperator(
            spec, switch, switch.accelerator
        )

    selector_counter = iter(range(1, 1_000_000))

    def algorithm_factory(n_rsnodes: int):
        index = next(selector_counter)
        algorithm = create_selector(
            config.algorithm,
            concurrency_weight=n_rsnodes,
            prior_service_rate=config.prior_service_rate(),
            rng=scenario.rng.stream(f"selector.operator.{index}"),
        )
        # Mid-run deployments (replans, failover) must come up on the same
        # backend as build-time selectors.
        backend = scenario.backend
        if (
            backend is not None
            and backend.compiled
            and hasattr(algorithm, "use_kernel")
        ):
            algorithm.use_kernel(backend.kernels)
        return algorithm

    tor_switches = {
        name: sw
        for name, sw in scenario.switches.items()
        if sw.is_tor
    }
    controller = NetRSController(
        scenario.env,
        groups=groups,
        operators=operators,
        tor_switches=tor_switches,
        all_switches=list(scenario.switches.values()),
        monitors=monitors,
        algorithm_factory=algorithm_factory,
        selector_ring=scenario.ring,
        extra_hops_budget=config.extra_hops_budget(),
        solver=config.solver,
        solver_time_limit=config.solver_time_limit,
    )
    scenario.controller = controller

    # Bootstrap traffic estimate: each group's rate is the demand-weighted
    # share of the aggregate arrival rate; tier mix follows server placement.
    rate = config.arrival_rate()
    client_index = {name: i for i, name in enumerate(scenario.client_hosts)}
    group_rates = {
        group.group_id: rate
        * sum(
            float(scenario.weights.probabilities[client_index[h]])
            for h in group.hosts
        )
        for group in groups
    }
    traffic = estimate_traffic(
        groups,
        topology=topology,
        server_hosts=scenario.server_hosts,
        group_rates=group_rates,
    )
    scenario.plan = controller.plan_and_deploy(traffic)
    if config.replan_period is not None:
        controller.start_replanning(config.replan_period)


def _spec_of(scenario: Scenario, switch: ProgrammableSwitch):
    from repro.core.placement.problem import OperatorSpec

    node = scenario.topology.node(switch.name)
    capacity = (
        scenario.config.max_accelerator_utilization
        * scenario.config.accelerator_cores
        / scenario.config.accelerator_service_time
        / scenario.config.work_per_request
    )
    return OperatorSpec(
        operator_id=switch.operator_id,
        switch=switch.name,
        tier=node.tier,
        pod=node.pod,
        capacity=capacity,
    )
