"""Codified verification of the paper's qualitative claims.

Turns section V-B's findings into executable checks: each claim runs the
experiments it needs and returns a structured verdict.  ``netrs verify``
prints the table; the slow test suite asserts the same shapes.

Claims are *shape-level* (orderings, trends), per DESIGN.md: absolute
milliseconds are not expected to transfer from the authors' setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import reduction
from repro.experiments.runner import run_experiment


@dataclass(frozen=True, slots=True)
class ClaimCheck:
    """Outcome of one claim verification."""

    claim_id: str
    description: str
    passed: bool
    details: str


class ClaimVerifier:
    """Runs and caches the experiments the claims need."""

    def __init__(
        self,
        *,
        base_config: Optional[ExperimentConfig] = None,
        seed: int = 1,
        total_requests: int = 20_000,
    ) -> None:
        if base_config is None:
            base_config = ExperimentConfig.small(
                seed=seed, total_requests=total_requests
            )
        self.base = base_config
        self._cache: Dict[Tuple, Dict[str, float]] = {}

    def summary(self, scheme: str, **overrides) -> Dict[str, float]:
        """Latency summary (ms) for one configuration, cached."""
        key = (scheme, tuple(sorted(overrides.items())))
        if key not in self._cache:
            config = self.base.replace(scheme=scheme, **overrides)
            self._cache[key] = run_experiment(config).summary()
        return self._cache[key]

    # ------------------------------------------------------------------
    # The claims
    # ------------------------------------------------------------------
    def claim_ordering(self) -> ClaimCheck:
        """NetRS-ILP < NetRS-ToR < CliRS on mean and p99 (section V-B i)."""
        clirs = self.summary("clirs")
        tor = self.summary("netrs-tor")
        ilp = self.summary("netrs-ilp")
        passed = (
            ilp["mean"] < tor["mean"] < clirs["mean"]
            and ilp["p99"] < clirs["p99"]
        )
        details = (
            f"mean ms: ILP {ilp['mean']:.2f} < ToR {tor['mean']:.2f} "
            f"< CliRS {clirs['mean']:.2f}"
        )
        return ClaimCheck(
            "ordering",
            "NetRS-ILP beats NetRS-ToR beats CliRS",
            passed,
            details,
        )

    def claim_substantial_reduction(self) -> ClaimCheck:
        """Latency reductions in the tens of percent (paper: up to 48/69%)."""
        clirs = self.summary("clirs")
        ilp = self.summary("netrs-ilp")
        mean_cut = reduction(clirs["mean"], ilp["mean"])
        p99_cut = reduction(clirs["p99"], ilp["p99"])
        return ClaimCheck(
            "reduction",
            "NetRS-ILP cuts mean and p99 latency substantially",
            mean_cut > 15 and p99_cut > 15,
            f"mean -{mean_cut:.1f}%, p99 -{p99_cut:.1f}%",
        )

    def claim_client_scaling(self) -> ClaimCheck:
        """Fig. 4: CliRS degrades with client count, NetRS stays flat."""
        few = max(2, self.base.n_clients // 4)
        many = self.base.n_clients
        clirs_growth = (
            self.summary("clirs", n_clients=many)["mean"]
            / self.summary("clirs", n_clients=few)["mean"]
        )
        ilp_growth = (
            self.summary("netrs-ilp", n_clients=many)["mean"]
            / self.summary("netrs-ilp", n_clients=few)["mean"]
        )
        return ClaimCheck(
            "fig4-clients",
            "more clients hurt CliRS but not NetRS-ILP",
            clirs_growth > 1.1 and ilp_growth < clirs_growth,
            f"mean growth {few}->{many} clients: CliRS x{clirs_growth:.2f}, "
            f"NetRS-ILP x{ilp_growth:.2f}",
        )

    def claim_skew_narrows_gap(self) -> ClaimCheck:
        """Fig. 5: demand skew shrinks NetRS's advantage but keeps it positive."""
        cut_uniform = reduction(
            self.summary("clirs")["mean"], self.summary("netrs-ilp")["mean"]
        )
        cut_skewed = reduction(
            self.summary("clirs", demand_skew=0.95)["mean"],
            self.summary("netrs-ilp", demand_skew=0.95)["mean"],
        )
        return ClaimCheck(
            "fig5-skew",
            "demand skew narrows the NetRS advantage",
            0 < cut_skewed < cut_uniform,
            f"mean reduction: uniform {cut_uniform:.1f}%, "
            f"95% skew {cut_skewed:.1f}%",
        )

    def claim_utilization_widens_gap(self) -> ClaimCheck:
        """Fig. 6: NetRS-ILP's advantage grows with system utilization."""
        cut_low = reduction(
            self.summary("clirs", utilization=0.3)["mean"],
            self.summary("netrs-ilp", utilization=0.3)["mean"],
        )
        cut_high = reduction(
            self.summary("clirs", utilization=0.9)["mean"],
            self.summary("netrs-ilp", utilization=0.9)["mean"],
        )
        return ClaimCheck(
            "fig6-utilization",
            "high utilization widens the NetRS advantage",
            cut_high > cut_low,
            f"mean reduction: 30% util {cut_low:.1f}%, 90% util {cut_high:.1f}%",
        )

    def claim_redundancy_low_util_only(self) -> ClaimCheck:
        """Fig. 6: CliRS-R95 helps tails at low utilization only."""
        gain_low = reduction(
            self.summary("clirs", utilization=0.3)["p999"],
            self.summary("clirs-r95", utilization=0.3)["p999"],
        )
        gain_high = reduction(
            self.summary("clirs", utilization=0.9)["p999"],
            self.summary("clirs-r95", utilization=0.9)["p999"],
        )
        return ClaimCheck(
            "r95-low-util",
            "redundant requests pay off only at low utilization",
            gain_low > 0 and gain_high < gain_low,
            f"p99.9 gain: 30% util {gain_low:.1f}%, 90% util {gain_high:.1f}%",
        )

    def claim_service_time_interplay(self) -> ClaimCheck:
        """Fig. 7: small service times shrink the mean-latency advantage."""
        cut_fast = reduction(
            self.summary("clirs", mean_service_time=0.1e-3)["mean"],
            self.summary("netrs-ilp", mean_service_time=0.1e-3)["mean"],
        )
        cut_slow = reduction(
            self.summary("clirs", mean_service_time=4e-3)["mean"],
            self.summary("netrs-ilp", mean_service_time=4e-3)["mean"],
        )
        return ClaimCheck(
            "fig7-service-time",
            "small service times erode the mean-latency advantage",
            cut_slow > cut_fast,
            f"mean reduction: t_kv=0.1ms {cut_fast:.1f}%, "
            f"t_kv=4ms {cut_slow:.1f}%",
        )

    def all_claims(self) -> List[ClaimCheck]:
        """Run every claim check (order matches the paper's narrative)."""
        return [
            self.claim_ordering(),
            self.claim_substantial_reduction(),
            self.claim_client_scaling(),
            self.claim_skew_narrows_gap(),
            self.claim_utilization_widens_gap(),
            self.claim_redundancy_low_util_only(),
            self.claim_service_time_interplay(),
        ]


def format_claims(checks: List[ClaimCheck]) -> str:
    """Render verdicts as an aligned text table."""
    width = max(len(c.claim_id) for c in checks)
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"[{status}] {check.claim_id.ljust(width)}  {check.details}")
    passed = sum(1 for c in checks if c.passed)
    lines.append(f"{passed}/{len(checks)} claims reproduced")
    return "\n".join(lines)
