"""Experiment harness reproducing the paper's evaluation (section V).

* :class:`~repro.experiments.config.ExperimentConfig` -- every knob,
* :func:`~repro.experiments.runner.run_experiment` -- one run,
* :func:`~repro.experiments.sweep.run_sweep` -- a (value x scheme x seed)
  grid,
* :mod:`~repro.experiments.figures` -- canonical Fig. 4-7 definitions,
* :mod:`~repro.experiments.tables` -- paper-style text rendering.
"""

from repro.experiments.claims import ClaimCheck, ClaimVerifier, format_claims
from repro.experiments.config import (
    NETRS_SCHEMES,
    SCHEMES,
    ExperimentConfig,
)
from repro.experiments.figures import FIGURES, FigureSpec, base_config, run_figure
from repro.experiments.metrics import (
    METRICS,
    mean_of_summaries,
    reduction,
    summary_reduction,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import Scenario, build_scenario
from repro.experiments.statistics import (
    Estimate,
    PairedComparison,
    mean_and_ci,
    paired_comparison,
)
from repro.experiments.sweep import SweepResult, run_sweep
from repro.experiments.tables import (
    format_figure,
    format_metric_table,
    format_reductions,
)

__all__ = [
    "ClaimCheck",
    "ClaimVerifier",
    "Estimate",
    "ExperimentConfig",
    "ExperimentResult",
    "FIGURES",
    "FigureSpec",
    "METRICS",
    "NETRS_SCHEMES",
    "SCHEMES",
    "Scenario",
    "SweepResult",
    "base_config",
    "PairedComparison",
    "build_scenario",
    "format_claims",
    "format_figure",
    "format_metric_table",
    "format_reductions",
    "mean_and_ci",
    "mean_of_summaries",
    "paired_comparison",
    "reduction",
    "run_experiment",
    "run_figure",
    "run_sweep",
    "summary_reduction",
]
