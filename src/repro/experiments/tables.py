"""Render sweep results as the paper's figures, in text form.

Each of Figs. 4-7 is four bar groups (Avg / 95th / 99th / 99.9th latency)
over the swept parameter with one bar per scheme; here that becomes four
aligned text tables, one per metric, with schemes as columns.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.metrics import METRIC_LABELS, METRICS, summary_reduction
from repro.experiments.sweep import SweepResult

#: Paper display names for schemes.
SCHEME_LABELS = {
    "clirs": "CliRS",
    "clirs-r95": "CliRS-R95",
    "netrs-tor": "NetRS-ToR",
    "netrs-ilp": "NetRS-ILP",
    "netrs-greedy": "NetRS-Greedy",
    "netrs-core": "NetRS-Core",
}


def format_metric_table(
    sweep: SweepResult, metric: str, *, title: str = ""
) -> str:
    """One metric across the sweep: rows = parameter values, cols = schemes."""
    header_cells = [sweep.parameter] + [
        SCHEME_LABELS.get(s, s) for s in sweep.schemes
    ]
    rows: List[List[str]] = [header_cells]
    for value in sweep.values:
        row = [str(value)]
        for scheme in sweep.schemes:
            row.append(f"{sweep.summary(value, scheme)[metric]:.3f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header_cells))]
    lines = []
    if title:
        lines.append(title)
    lines.append(f"-- {METRIC_LABELS[metric]} latency (ms) --")
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_figure(sweep: SweepResult, *, title: str) -> str:
    """The full four-panel figure as stacked text tables."""
    blocks = [title]
    for metric in METRICS:
        blocks.append(format_metric_table(sweep, metric))
    return "\n\n".join(blocks)


def format_reductions(
    sweep: SweepResult,
    *,
    baseline: str = "clirs",
    target: str = "netrs-ilp",
) -> str:
    """Per-value latency reductions of ``target`` vs ``baseline`` (percent)."""
    lines = [
        f"latency reduction of {SCHEME_LABELS.get(target, target)} vs "
        f"{SCHEME_LABELS.get(baseline, baseline)} (%)"
    ]
    header = [sweep.parameter] + list(METRICS)
    rows = [header]
    for value in sweep.values:
        reductions = summary_reduction(
            sweep.summary(value, baseline), sweep.summary(value, target)
        )
        rows.append(
            [str(value)] + [f"{reductions[m]:.1f}" for m in METRICS]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for row in rows:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_bars(sweep: SweepResult, metric: str, *, width: int = 46) -> str:
    """Horizontal ASCII bars, one group per swept value (figure-like view).

    Bars are scaled to the largest value of the metric across the grid, so
    scheme-to-scheme and value-to-value comparisons are both visible.
    """
    peak = max(
        sweep.summary(value, scheme)[metric]
        for value in sweep.values
        for scheme in sweep.schemes
    )
    if peak <= 0:
        peak = 1.0
    label_width = max(
        len(SCHEME_LABELS.get(scheme, scheme)) for scheme in sweep.schemes
    )
    lines = [f"-- {METRIC_LABELS[metric]} latency (ms) --"]
    for value in sweep.values:
        lines.append(f"{sweep.parameter} = {value}")
        for scheme in sweep.schemes:
            number = sweep.summary(value, scheme)[metric]
            bar = "#" * max(1, round(width * number / peak))
            label = SCHEME_LABELS.get(scheme, scheme).rjust(label_width)
            lines.append(f"  {label} |{bar} {number:.3f}")
        lines.append("")
    return "\n".join(lines).rstrip()


def format_markdown_report(sweep: SweepResult, *, title: str) -> str:
    """The whole figure as a Markdown document (tables + reductions).

    Suitable for pasting into EXPERIMENTS.md-style records.
    """
    lines = [f"## {title}", ""]
    header = (
        f"| {sweep.parameter} | "
        + " | ".join(
            f"{SCHEME_LABELS.get(s, s)} {METRIC_LABELS[m]}"
            for m in METRICS
            for s in sweep.schemes
        )
        + " |"
    )
    separator = "|" + "---|" * (1 + len(METRICS) * len(sweep.schemes))
    lines.extend([header, separator])
    for value in sweep.values:
        cells = [str(value)]
        for metric in METRICS:
            for scheme in sweep.schemes:
                cells.append(f"{sweep.summary(value, scheme)[metric]:.3f}")
        lines.append("| " + " | ".join(cells) + " |")
    if "clirs" in sweep.schemes and "netrs-ilp" in sweep.schemes:
        lines.extend(["", "### Reductions (NetRS-ILP vs CliRS, %)", ""])
        lines.append("| " + sweep.parameter + " | " + " | ".join(METRICS) + " |")
        lines.append("|" + "---|" * (1 + len(METRICS)))
        for value in sweep.values:
            cuts = summary_reduction(
                sweep.summary(value, "clirs"), sweep.summary(value, "netrs-ilp")
            )
            lines.append(
                f"| {value} | "
                + " | ".join(f"{cuts[m]:.1f}" for m in METRICS)
                + " |"
            )
    lines.append("")
    return "\n".join(lines)


def figure_series(sweep: SweepResult) -> Dict[str, Dict[str, List[float]]]:
    """Machine-readable figure data: metric -> scheme -> series."""
    return {
        metric: {scheme: sweep.series(scheme, metric) for scheme in sweep.schemes}
        for metric in METRICS
    }
