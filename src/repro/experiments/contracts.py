"""Declared config-digest contracts (checked by ``netrs contracts``).

``repro.exec.job.config_digest`` hashes every :class:`ExperimentConfig`
field, so *adding* a field silently changes every job digest and orphans
all existing ledgers -- unless the new field is elided at its default via
``_DIGEST_DEFAULTS`` (the forward-compat dance PR6 performed for
``fidelity``).  Rule CON003 makes the dance unforgettable: every field not
grandfathered below must carry an elision entry whose value equals the
field's declared default, plus a CLI route (a dedicated ``--flag`` or a
declared entry in ``cli_via_sweep`` for knobs reached through the generic
``netrs sweep <field>`` path).

``FOUNDING_FIELDS`` lists the fields hashed *unconditionally* today.  They
are grandfathered as a matter of ledger compatibility, not taste: eliding
one of them now would change the digest of every existing default-valued
job and orphan every ledger written since the field appeared.  The list
therefore only ever grows when the contract itself is re-based -- never
edit it to silence a CON003 finding about a new field; add the elision
entry instead.
"""

from __future__ import annotations

from repro.lint.contracts import ContractRegistry, DigestContract

#: Every ExperimentConfig field that predates this contract and is hashed
#: unconditionally (``fidelity`` is absent: it already has an elision
#: entry, which CON003 validates against the field default instead).
FOUNDING_FIELDS = (
    "scheme",
    "seed",
    "fat_tree_k",
    "switch_link_latency",
    "host_link_latency",
    "link_bandwidth",
    "track_link_stats",
    "route_cache_size",
    "engine_compaction",
    "engine_backend",
    "rng_batch_size",
    "background_traffic_rate",
    "background_packet_size",
    "n_servers",
    "n_clients",
    "replication_factor",
    "virtual_nodes",
    "parallelism",
    "mean_service_time",
    "fluctuation_range",
    "fluctuation_interval",
    "value_size",
    "workload_mode",
    "closed_window",
    "think_time",
    "utilization",
    "write_fraction",
    "write_quorum",
    "total_requests",
    "warmup_fraction",
    "zipf_exponent",
    "key_space",
    "demand_skew",
    "hot_fraction",
    "algorithm",
    "ewma_alpha",
    "group_granularity",
    "accelerator_cores",
    "accelerator_service_time",
    "accelerator_link_delay",
    "max_accelerator_utilization",
    "extra_hops_fraction",
    "work_per_request",
    "solver_time_limit",
    "replan_period",
    "redundancy_percentile",
    "redundancy_min_samples",
    "fault_schedule",
    "request_timeout",
    "max_retries",
)

DIGESTS = (
    DigestContract(
        name="experiment-config digest",
        config_path="src/repro/experiments/config.py",
        config_class="ExperimentConfig",
        digest_path="src/repro/exec/job.py",
        defaults_name="_DIGEST_DEFAULTS",
        founding_fields=FOUNDING_FIELDS,
        cli_path="src/repro/cli.py",
    ),
)

CONTRACTS = ContractRegistry(digests=list(DIGESTS))
