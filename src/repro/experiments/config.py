"""Experiment configuration: every knob of the paper's evaluation.

Defaults follow paper section V-A.  Two profiles are provided:

* :meth:`ExperimentConfig.paper` -- the full-scale setup (16-ary fat-tree,
  1024 hosts, 100 servers, 500 clients, 6 M requests).  Faithful but
  CPU-expensive in pure Python.
* :meth:`ExperimentConfig.small` -- the default shape-preserving scale-down
  (8-ary fat-tree, 128 hosts, 32 servers, 64 clients) used by tests and
  benchmarks; ratios (utilization, replication, fluctuation, accelerator
  parameters) are unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConfigurationError

#: The paper's evaluation schemes plus our ablation extras.
SCHEMES = (
    "clirs",
    "clirs-r95",
    "netrs-tor",
    "netrs-ilp",
    "netrs-greedy",
    "netrs-core",
)

#: Schemes where replica selection happens in the network.
NETRS_SCHEMES = ("netrs-tor", "netrs-ilp", "netrs-greedy", "netrs-core")

#: Maps a NetRS scheme to its placement solver backend.
SCHEME_SOLVERS = {
    "netrs-tor": "tor",
    "netrs-ilp": "ilp",
    "netrs-greedy": "greedy",
    "netrs-core": "core-only",
}


@dataclass
class ExperimentConfig:
    """All parameters of one simulated experiment.

    Adding a field changes every job digest unless it is elided at its
    default in ``repro.exec.job._DIGEST_DEFAULTS``; rule CON003
    (``netrs contracts``, declared in :mod:`repro.experiments.contracts`)
    fails CI until the elision entry and a CLI route exist.
    """

    scheme: str = "clirs"
    seed: int = 0
    # --- topology ---------------------------------------------------------
    fat_tree_k: int = 8
    switch_link_latency: float = 30e-6
    host_link_latency: float = 30e-6
    link_bandwidth: Optional[float] = None  # bits/s; None = pure-delay links
    track_link_stats: bool = False  # per-directed-link byte/packet counters
    # --- simulator performance knobs (identical results either way) --------
    route_cache_size: int = 65536  # ECMP path memoization bound; 0 = bypass
    engine_compaction: bool = True  # compact cancelled timers in the heap
    engine_backend: str = "auto"  # event-core kernels: auto/python/numba/cython
    rng_batch_size: int = 1024  # pre-drawn RNG block length; 0 = bypass
    background_traffic_rate: float = 0.0  # packets/s between idle hosts
    background_packet_size: int = 1024
    # --- key-value store --------------------------------------------------
    n_servers: int = 32
    n_clients: int = 64
    replication_factor: int = 3
    virtual_nodes: int = 16
    parallelism: int = 4  # the paper's Np
    mean_service_time: float = 4e-3  # the paper's t_kv
    fluctuation_range: float = 3.0  # the paper's d; 1.0 disables fluctuation
    fluctuation_interval: float = 50e-3
    value_size: int = 1024
    # --- workload ----------------------------------------------------------
    workload_mode: str = "open"  # "open" (paper) or "closed" (C3-style)
    closed_window: int = 1  # outstanding requests per client (closed mode)
    think_time: float = 0.0  # mean think time between requests (closed mode)
    utilization: float = 0.9  # nominal rho = t_kv * A / (Ns * Np)
    write_fraction: float = 0.0  # share of requests that are writes
    write_quorum: Optional[int] = None  # acks to wait for (None = all)
    read_quorum: Optional[int] = None  # replicas consulted per read (None = 1)
    total_requests: int = 30_000
    warmup_fraction: float = 0.1
    zipf_exponent: float = 0.99
    key_space: int = 1_000_000
    demand_skew: Optional[float] = None  # fraction of requests from hot clients
    hot_fraction: float = 0.2
    # --- replica selection --------------------------------------------------
    algorithm: str = "c3"
    ewma_alpha: float = 0.9
    # --- NetRS ---------------------------------------------------------------
    group_granularity: Union[str, int] = "rack"
    accelerator_cores: int = 1
    accelerator_service_time: float = 5e-6
    accelerator_link_delay: float = 1.25e-6  # half the 2.5 us RTT
    max_accelerator_utilization: float = 0.5  # the paper's U
    extra_hops_fraction: float = 0.2  # E = fraction * aggregate arrival rate
    work_per_request: float = 2.0  # request + response clone per served read
    solver_time_limit: Optional[float] = None
    replan_period: Optional[float] = None
    # --- CliRS-R95 -----------------------------------------------------------
    redundancy_percentile: float = 95.0
    redundancy_min_samples: int = 30
    # --- faults & robustness (see docs/FAULTS.md) ----------------------------
    fault_schedule: Optional[str] = None  # "kind@time:target;..."; None = none
    request_timeout: Optional[float] = None  # seconds; None = never time out
    max_retries: int = 3  # retransmissions per request, once a timeout is set
    # --- membership churn (see docs/CONSISTENCY.md) --------------------------
    churn_schedule: Optional[str] = None  # node-join/node-leave events only
    # --- fidelity tier (see docs/MESOSCALE.md) -------------------------------
    fidelity: str = "packet"  # "packet" (hop-by-hop) or "flow" (mesoscale)
    # --- flow-tier fast path (see docs/MESOSCALE.md "Vectorized fast path") --
    vector_batch: int = 0  # SoA request-block length; 0 = scalar flow engine
    shards: int = 1  # independent flow sub-experiments run as exec jobs

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def netrs(self) -> bool:
        """Whether replica selection happens in-network."""
        return self.scheme in NETRS_SCHEMES

    @property
    def redundancy_enabled(self) -> bool:
        """Whether clients duplicate slow requests (CliRS-R95)."""
        return self.scheme == "clirs-r95"

    @property
    def solver(self) -> str:
        """Placement backend for NetRS schemes."""
        return SCHEME_SOLVERS.get(self.scheme, "ilp")

    def arrival_rate(self) -> float:
        """Aggregate request rate A, from the nominal utilization.

        The paper defines utilization as ``t_kv * A / (Ns * Np)``.
        """
        return (
            self.utilization
            * self.n_servers
            * self.parallelism
            / self.mean_service_time
        )

    def effective_utilization(self) -> float:
        """Rate-averaged utilization under fluctuation: ``2 rho / (1 + d)``."""
        return 2.0 * self.utilization / (1.0 + self.fluctuation_range)

    def warmup_requests(self) -> int:
        """Requests excluded from latency statistics."""
        return int(self.total_requests * self.warmup_fraction)

    def prior_service_rate(self) -> float:
        """Cold-start service-rate prior for selectors: ``Np / t_kv``."""
        return self.parallelism / self.mean_service_time

    def effective_read_quorum(self) -> int:
        """Replicas consulted per read (R); ``None`` means 1."""
        return self.read_quorum if self.read_quorum is not None else 1

    def effective_write_quorum(self) -> int:
        """Acks awaited per write (W); ``None`` means all replicas."""
        return (
            self.write_quorum
            if self.write_quorum is not None
            else self.replication_factor
        )

    def consistency_notes(self) -> "list[str]":
        """Warning-level notes about the configured consistency regime.

        A sloppy quorum (``R + W <= N``) is deliberately *not* an error:
        it is a meaningful operating point (Dynamo-style availability over
        consistency) whose consequence -- reads may miss the latest write
        -- the staleness metrics exist to measure.  The note surfaces the
        choice in :meth:`ExperimentResult.describe` instead.
        """
        notes = []
        touches_quorums = (
            self.write_fraction > 0
            or self.read_quorum is not None
            or self.write_quorum is not None
        )
        if touches_quorums:
            r = self.effective_read_quorum()
            w = self.effective_write_quorum()
            if r + w <= self.replication_factor:
                notes.append(
                    f"sloppy quorum: R({r}) + W({w}) <= "
                    f"N({self.replication_factor}); read and write quorums "
                    "need not intersect, so reads may return stale values "
                    "-- see docs/CONSISTENCY.md"
                )
        return notes

    def extra_hops_budget(self) -> float:
        """The paper's E: allowed extra forwardings per second."""
        return self.extra_hops_fraction * self.arrival_rate()

    def total_hosts(self) -> int:
        """Hosts in the fat-tree."""
        half = self.fat_tree_k // 2
        return self.fat_tree_k * half * half

    # ------------------------------------------------------------------
    # Validation & profiles
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; choose from {SCHEMES}"
            )
        if self.fat_tree_k < 2 or self.fat_tree_k % 2:
            raise ConfigurationError("fat_tree_k must be even and >= 2")
        if self.n_servers < self.replication_factor:
            raise ConfigurationError(
                "need at least replication_factor servers "
                f"({self.n_servers} < {self.replication_factor})"
            )
        if self.n_clients < 1:
            raise ConfigurationError("need at least one client")
        if self.n_servers + self.n_clients > self.total_hosts():
            raise ConfigurationError(
                f"{self.n_servers} servers + {self.n_clients} clients exceed "
                f"{self.total_hosts()} hosts (one role per host)"
            )
        if not 0 < self.utilization:
            raise ConfigurationError("utilization must be positive")
        if self.total_requests < 1:
            raise ConfigurationError("total_requests must be >= 1")
        if not 0 <= self.warmup_fraction < 1:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if self.mean_service_time <= 0:
            raise ConfigurationError("mean_service_time must be positive")
        if self.fluctuation_range < 1:
            raise ConfigurationError("fluctuation_range (d) must be >= 1")
        if self.demand_skew is not None and not 0 < self.demand_skew < 1:
            raise ConfigurationError("demand_skew must be in (0, 1)")
        if self.route_cache_size < 0:
            raise ConfigurationError("route_cache_size must be >= 0 (0 = off)")
        if self.engine_backend not in ("auto", "python", "numba", "cython"):
            raise ConfigurationError(
                "engine_backend must be one of 'auto', 'python', 'numba', "
                f"'cython', got {self.engine_backend!r}"
            )
        if self.rng_batch_size < 0:
            raise ConfigurationError("rng_batch_size must be >= 0 (0 = off)")
        if self.background_traffic_rate < 0:
            raise ConfigurationError("background_traffic_rate must be >= 0")
        if self.background_traffic_rate > 0:
            idle = self.total_hosts() - self.n_servers - self.n_clients
            if idle < 2:
                raise ConfigurationError(
                    "background traffic needs at least 2 idle hosts"
                )
        if not 0 <= self.write_fraction < 1:
            raise ConfigurationError("write_fraction must be in [0, 1)")
        if self.write_quorum is not None and not (
            1 <= self.write_quorum <= self.replication_factor
        ):
            raise ConfigurationError(
                "write_quorum must be in [1, replication_factor]"
            )
        if self.read_quorum is not None and not (
            1 <= self.read_quorum <= self.replication_factor
        ):
            raise ConfigurationError(
                "read_quorum must be in [1, replication_factor] "
                f"(got {self.read_quorum} with replication_factor="
                f"{self.replication_factor}); a quorum cannot exceed the "
                "replica count"
            )
        if self.workload_mode not in ("open", "closed"):
            raise ConfigurationError(
                f"workload_mode must be 'open' or 'closed', got "
                f"{self.workload_mode!r}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive (seconds)")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.fault_schedule:
            # Imported lazily: config is loaded by exec workers and the CLI
            # before any fault machinery is needed.
            from repro.faults.schedule import parse_fault_schedule

            schedule = parse_fault_schedule(self.fault_schedule)
            if schedule.requires_timeouts() and self.request_timeout is None:
                raise ConfigurationError(
                    "fault_schedule crashes servers or cuts links, which "
                    "silently swallows requests; set request_timeout (and "
                    "max_retries) so clients can recover -- see docs/FAULTS.md"
                )
            if schedule.churn_events():
                raise ConfigurationError(
                    "node-join/node-leave events belong in churn_schedule, "
                    "not fault_schedule: churn is graceful membership "
                    "change, not a failure -- see docs/CONSISTENCY.md"
                )
        if self.churn_schedule:
            from repro.faults.schedule import parse_fault_schedule

            churn = parse_fault_schedule(self.churn_schedule)
            if len(churn.churn_events()) != len(churn.events):
                raise ConfigurationError(
                    "churn_schedule may contain only node-join/node-leave "
                    "events; put failures in fault_schedule instead -- see "
                    "docs/CONSISTENCY.md"
                )
        if self.fidelity not in ("packet", "flow"):
            raise ConfigurationError(
                f"fidelity must be 'packet' or 'flow', got {self.fidelity!r}"
            )
        if self.vector_batch < 0:
            raise ConfigurationError("vector_batch must be >= 0")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.fidelity != "flow" and (self.vector_batch or self.shards > 1):
            raise ConfigurationError(
                "vector_batch and shards are flow-tier knobs; set "
                "fidelity='flow' to use them -- see docs/MESOSCALE.md"
            )
        if self.fidelity == "flow":
            # Imported lazily for the same reason as the fault schedule; the
            # gate rejects everything the flow tier cannot model faithfully.
            from repro.mesoscale.support import ensure_flow_supported

            ensure_flow_supported(self)
        if self.workload_mode == "closed":
            if self.write_fraction:
                raise ConfigurationError(
                    "mixed read/write workloads are open-loop only"
                )
            if self.demand_skew is not None:
                raise ConfigurationError(
                    "demand skew is an open-loop concept; closed-loop load "
                    "is set by closed_window/think_time instead"
                )
            if self.closed_window < 1:
                raise ConfigurationError("closed_window must be >= 1")
            if self.think_time < 0:
                raise ConfigurationError("think_time must be non-negative")

    def replace(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields changed (validated)."""
        config = dataclasses.replace(self, **changes)
        config.validate()
        return config

    @classmethod
    def small(cls, scheme: str = "clirs", seed: int = 0, **overrides) -> "ExperimentConfig":
        """The scale-down profile used by tests and default benchmarks."""
        config = cls(scheme=scheme, seed=seed)
        config = dataclasses.replace(config, **overrides)
        config.validate()
        return config

    @classmethod
    def tiny(cls, scheme: str = "clirs", seed: int = 0, **overrides) -> "ExperimentConfig":
        """A minimal configuration for fast unit/integration tests."""
        defaults = dict(
            fat_tree_k=4,
            n_servers=6,
            n_clients=8,
            total_requests=600,
            key_space=10_000,
            virtual_nodes=4,
            warmup_fraction=0.1,
        )
        defaults.update(overrides)
        config = cls(scheme=scheme, seed=seed)
        config = dataclasses.replace(config, **defaults)
        config.validate()
        return config

    @classmethod
    def paper(cls, scheme: str = "clirs", seed: int = 0, **overrides) -> "ExperimentConfig":
        """The paper's full-scale parameters (section V-A)."""
        defaults = dict(
            fat_tree_k=16,
            n_servers=100,
            n_clients=500,
            total_requests=6_000_000,
            key_space=100_000_000,
            virtual_nodes=16,
        )
        defaults.update(overrides)
        config = cls(scheme=scheme, seed=seed)
        config = dataclasses.replace(config, **defaults)
        config.validate()
        return config
