"""Canonical definitions of the paper's figures (section V-B).

Each figure is a named sweep specification; the benchmarks, the CLI and
EXPERIMENTS.md all derive from these definitions so there is exactly one
source of truth for what "Fig. 4" means.

The paper's parameter values are recorded verbatim; the *scaled* values map
them onto the default small profile (8-ary fat-tree, 128 hosts) with the
same proportions relative to host count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec import ExecutionPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import SweepResult, run_sweep

#: The four schemes every paper figure compares.
PAPER_SCHEMES = ("clirs", "clirs-r95", "netrs-tor", "netrs-ilp")


@dataclass(frozen=True)
class FigureSpec:
    """One evaluation figure: which parameter is swept and how."""

    figure_id: str
    title: str
    parameter: str
    paper_values: Tuple[Any, ...]
    scaled_values: Tuple[Any, ...]
    schemes: Tuple[str, ...] = PAPER_SCHEMES

    def values(self, profile: str) -> Tuple[Any, ...]:
        """Swept values for a profile (``"paper"`` or ``"small"``)."""
        if profile == "paper":
            return self.paper_values
        if profile == "small":
            return self.scaled_values
        raise ConfigurationError(f"unknown profile {profile!r}")


FIGURES: Dict[str, FigureSpec] = {
    "fig4": FigureSpec(
        figure_id="fig4",
        title="Fig. 4 - varying number of clients",
        parameter="n_clients",
        paper_values=(100, 300, 500, 700),
        scaled_values=(16, 32, 64, 96),
    ),
    "fig5": FigureSpec(
        figure_id="fig5",
        title="Fig. 5 - varying demand skewness",
        parameter="demand_skew",
        paper_values=(0.70, 0.80, 0.90, 0.95),
        scaled_values=(0.70, 0.80, 0.90, 0.95),
    ),
    "fig6": FigureSpec(
        figure_id="fig6",
        title="Fig. 6 - varying system utilization",
        parameter="utilization",
        paper_values=(0.30, 0.50, 0.70, 0.90),
        scaled_values=(0.30, 0.50, 0.70, 0.90),
    ),
    "fig7": FigureSpec(
        figure_id="fig7",
        title="Fig. 7 - varying service time",
        parameter="mean_service_time",
        paper_values=(0.1e-3, 0.5e-3, 1.0e-3, 2.0e-3, 4.0e-3),
        scaled_values=(0.1e-3, 0.5e-3, 1.0e-3, 2.0e-3, 4.0e-3),
    ),
}


def base_config(profile: str, seed: int = 0, **overrides) -> ExperimentConfig:
    """Default configuration for a profile."""
    if profile == "paper":
        return ExperimentConfig.paper(seed=seed, **overrides)
    if profile == "small":
        return ExperimentConfig.small(seed=seed, **overrides)
    raise ConfigurationError(f"unknown profile {profile!r}")


def run_figure(
    figure_id: str,
    *,
    profile: str = "small",
    seed: int = 0,
    repetitions: int = 1,
    schemes: Sequence[str] = (),
    total_requests: int = 0,
    values: Sequence[Any] = (),
    execution: Optional[ExecutionPolicy] = None,
) -> SweepResult:
    """Execute one paper figure end to end.

    ``total_requests`` and ``values`` override the profile defaults (handy
    for fast benchmark runs); zero/empty means "use the profile's values".
    ``execution`` is forwarded to :func:`run_sweep` for parallelism/resume.
    """
    spec = FIGURES.get(figure_id)
    if spec is None:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; available: {', '.join(sorted(FIGURES))}"
        )
    overrides: Dict[str, Any] = {}
    if total_requests:
        overrides["total_requests"] = total_requests
    base = base_config(profile, seed=seed, **overrides)
    chosen_values: List[Any] = list(values) if values else list(spec.values(profile))
    # Fig. 7 changes the service time, which changes the absolute arrival
    # rate but not utilization; nothing else to adjust.  Fig. 5's sweep values
    # are skew fractions and apply to any profile unchanged.
    return run_sweep(
        base,
        parameter=spec.parameter,
        values=chosen_values,
        schemes=list(schemes) if schemes else list(spec.schemes),
        repetitions=repetitions,
        execution=execution,
    )
