"""Latency-metric helpers shared by sweeps, tables and assertions."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError

#: The four metrics every figure of the paper reports.
METRICS = ("mean", "p95", "p99", "p999")

#: Pretty labels for tables.
METRIC_LABELS = {
    "mean": "Avg.",
    "p95": "95th Percentile",
    "p99": "99th Percentile",
    "p999": "99.9th Percentile",
}

#: Failure-aware counters surfaced next to the latency metrics when faults
#: or request timeouts are configured (all zero otherwise); ``unavailability``
#: is in target-seconds of downtime.  See ``docs/FAULTS.md``.
FAULT_METRICS = (
    "timeouts",
    "retries",
    "requests_lost",
    "packets_dropped",
    "unavailability",
)


def fault_summary(result) -> Dict[str, float]:
    """The :data:`FAULT_METRICS` counters of a result-like object.

    Works on anything exposing the counters as attributes
    (:class:`~repro.experiments.runner.ExperimentResult`,
    :class:`~repro.exec.JobOutcome`).
    """
    return {name: float(getattr(result, name)) for name in FAULT_METRICS}


def aggregate_fault_counters(
    counter_maps: Iterable[Mapping[str, float]]
) -> Dict[str, float]:
    """Sum fault counters across runs (e.g. the repetitions of a cell)."""
    totals = {name: 0.0 for name in FAULT_METRICS}
    for counters in counter_maps:
        for name in FAULT_METRICS:
            totals[name] += float(counters.get(name, 0.0))
    return totals


#: Consistency counters surfaced when writes, quorum reads or churn are
#: configured (all zero otherwise).  See ``docs/CONSISTENCY.md``.
CONSISTENCY_METRICS = (
    "writes_completed",
    "write_failures",
    "stale_reads",
    "read_repairs",
    "migrated_keys",
    "migration_bytes",
    "churn_events",
)


def consistency_summary(result) -> Dict[str, float]:
    """The :data:`CONSISTENCY_METRICS` counters of a result-like object.

    Works on anything exposing the counters as attributes
    (:class:`~repro.experiments.runner.ExperimentResult`,
    :class:`~repro.exec.JobOutcome`).
    """
    return {name: float(getattr(result, name)) for name in CONSISTENCY_METRICS}


def aggregate_consistency_counters(
    counter_maps: Iterable[Mapping[str, float]]
) -> Dict[str, float]:
    """Sum consistency counters across runs (the repetitions of a cell)."""
    totals = {name: 0.0 for name in CONSISTENCY_METRICS}
    for counters in counter_maps:
        for name in CONSISTENCY_METRICS:
            totals[name] += float(counters.get(name, 0.0))
    return totals


def reduction(baseline: float, other: float) -> float:
    """Relative latency reduction of ``other`` vs ``baseline``, in percent.

    Positive means ``other`` is faster, matching the paper's phrasing
    ("NetRS reduces the mean latency by up to 48.4%").
    """
    if baseline <= 0 or math.isnan(baseline) or math.isnan(other):
        return math.nan
    return 100.0 * (baseline - other) / baseline


def summary_reduction(
    baseline: Mapping[str, float], other: Mapping[str, float]
) -> Dict[str, float]:
    """Per-metric reductions between two latency summaries."""
    return {m: reduction(baseline[m], other[m]) for m in METRICS if m in baseline}


def mean_of_summaries(summaries: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Average several repetitions' summaries metric-by-metric.

    The paper repeats each experiment over 3 deployments and reports the
    aggregate; averaging the per-run metrics reproduces that.
    """
    summaries = list(summaries)
    if not summaries:
        raise ConfigurationError("cannot average an empty set of summaries")
    keys = list(summaries[0].keys())
    matrix = np.array(
        [[s[key] for key in keys] for s in summaries], dtype=float
    )
    return dict(zip(keys, matrix.mean(axis=0).tolist()))
