"""Latency-metric helpers shared by sweeps, tables and assertions."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError

#: The four metrics every figure of the paper reports.
METRICS = ("mean", "p95", "p99", "p999")

#: Pretty labels for tables.
METRIC_LABELS = {
    "mean": "Avg.",
    "p95": "95th Percentile",
    "p99": "99th Percentile",
    "p999": "99.9th Percentile",
}


def reduction(baseline: float, other: float) -> float:
    """Relative latency reduction of ``other`` vs ``baseline``, in percent.

    Positive means ``other`` is faster, matching the paper's phrasing
    ("NetRS reduces the mean latency by up to 48.4%").
    """
    if baseline <= 0 or math.isnan(baseline) or math.isnan(other):
        return math.nan
    return 100.0 * (baseline - other) / baseline


def summary_reduction(
    baseline: Mapping[str, float], other: Mapping[str, float]
) -> Dict[str, float]:
    """Per-metric reductions between two latency summaries."""
    return {m: reduction(baseline[m], other[m]) for m in METRICS if m in baseline}


def mean_of_summaries(summaries: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Average several repetitions' summaries metric-by-metric.

    The paper repeats each experiment over 3 deployments and reports the
    aggregate; averaging the per-run metrics reproduces that.
    """
    summaries = list(summaries)
    if not summaries:
        raise ConfigurationError("cannot average an empty set of summaries")
    keys = list(summaries[0].keys())
    matrix = np.array(
        [[s[key] for key in keys] for s in summaries], dtype=float
    )
    return dict(zip(keys, matrix.mean(axis=0).tolist()))
