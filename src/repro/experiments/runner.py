"""Run experiments and collect results.

``run_experiment`` builds a scenario, drives the workload to completion,
and extracts the paper's latency metrics plus system-level accounting
(RSNode counts, accelerator utilization, redundancy volume, fabric traffic).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import Scenario, build_scenario
from repro.sim.probes import LatencyRecorder


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    config: ExperimentConfig
    latency: LatencyRecorder
    sim_duration: float
    wall_time: float
    completed_requests: int
    # Scheme-level accounting
    rsnode_count: int = 0
    drs_group_count: int = 0
    plan_description: str = ""
    redundant_requests: int = 0
    accelerator_max_utilization: float = 0.0
    selector_requests_handled: int = 0
    # Fabric accounting
    transmissions: int = 0
    bytes_transferred: int = 0
    netrs_overhead_bytes: int = 0
    events_executed: int = 0
    # Flow-tier internal events (fidelity="flow" only; the macro engine's
    # events_executed stays tiny there -- see docs/MESOSCALE.md)
    micro_events: int = 0
    # Failure-aware accounting (all zero on fault-free runs; docs/FAULTS.md)
    timeouts: int = 0
    retries: int = 0
    requests_lost: int = 0
    duplicates_suppressed: int = 0
    packets_dropped: int = 0
    server_dropped_requests: int = 0
    faults_injected: int = 0
    unavailability: float = 0.0
    # Consistency accounting (all zero on read-only static-membership runs;
    # docs/CONSISTENCY.md)
    writes_completed: int = 0
    write_failures: int = 0
    stale_reads: int = 0
    read_repairs: int = 0
    repair_writes_sent: int = 0
    quorum_degraded_reads: int = 0
    digest_probes_sent: int = 0
    migrated_keys: int = 0
    migration_bytes: int = 0
    churn_events: int = 0

    write_latency: Optional[LatencyRecorder] = None

    def write_summary(self) -> Optional[Dict[str, float]]:
        """Write-latency metrics in ms (None for read-only workloads)."""
        if self.write_latency is None or len(self.write_latency) == 0:
            return None
        return {
            metric: value * 1e3
            for metric, value in self.write_latency.summary().items()
        }

    def protocol_overhead_fraction(self) -> float:
        """Share of all transferred bytes spent on NetRS headers."""
        if self.bytes_transferred == 0:
            return 0.0
        return self.netrs_overhead_bytes / self.bytes_transferred

    def summary(self) -> Dict[str, float]:
        """The paper's four latency metrics, in **milliseconds**."""
        raw = self.latency.summary()
        return {metric: value * 1e3 for metric, value in raw.items()}

    def describe(self) -> str:
        """Multi-line human-readable report."""
        s = self.summary()
        lines = [
            f"scheme={self.config.scheme} seed={self.config.seed} "
            f"requests={self.completed_requests}",
            f"latency ms: mean={s['mean']:.3f} p95={s['p95']:.3f} "
            f"p99={s['p99']:.3f} p999={s['p999']:.3f}",
            f"sim={self.sim_duration:.2f}s wall={self.wall_time:.2f}s "
            f"events={self.events_executed}",
        ]
        if self.config.fidelity == "flow":
            per_request = self.micro_events / max(1, self.completed_requests)
            lines.append(
                f"fidelity=flow micro_events={self.micro_events} "
                f"({per_request:.1f}/request)"
            )
        if self.config.netrs:
            lines.append(
                f"rsnodes={self.rsnode_count} drs_groups={self.drs_group_count} "
                f"acc_util_max={self.accelerator_max_utilization:.3f}"
            )
        if self.config.redundancy_enabled:
            lines.append(f"redundant_requests={self.redundant_requests}")
        if self.config.fault_schedule or self.timeouts or self.requests_lost:
            lines.append(
                f"faults: injected={self.faults_injected} "
                f"timeouts={self.timeouts} retries={self.retries} "
                f"lost={self.requests_lost} "
                f"packets_dropped={self.packets_dropped} "
                f"unavailability={self.unavailability * 1e3:.1f}ms"
            )
        ws = self.write_summary()
        if ws is not None:
            lines.append(
                f"writes ms: mean={ws['mean']:.3f} p95={ws['p95']:.3f} "
                f"p99={ws['p99']:.3f} p999={ws['p999']:.3f} "
                f"(completed={self.writes_completed} "
                f"failed={self.write_failures})"
            )
        if self.config.write_fraction or self.config.read_quorum is not None:
            reads = max(1, self.completed_requests)
            lines.append(
                "consistency: "
                f"stale_reads={self.stale_reads} "
                f"({self.stale_reads / reads:.4%}) "
                f"read_repairs={self.read_repairs} "
                f"repair_writes={self.repair_writes_sent} "
                f"degraded_quorums={self.quorum_degraded_reads} "
                f"digest_probes={self.digest_probes_sent}"
            )
        if self.config.churn_schedule:
            lines.append(
                f"churn: events={self.churn_events} "
                f"migrated_keys={self.migrated_keys} "
                f"migration_bytes={self.migration_bytes}"
            )
        for note in self.config.consistency_notes():
            lines.append(f"note: {note}")
        return "\n".join(lines)


def run_experiment(
    config: ExperimentConfig,
    *,
    scenario: Optional[Scenario] = None,
    keep_scenario: bool = False,
) -> ExperimentResult:
    """Build (or reuse) a scenario, run it to completion, collect metrics.

    Raises :class:`ReproError` if the run does not complete within a generous
    simulated-time safety horizon (which would indicate a deadlock bug, not a
    slow system).

    With ``config.fidelity == "flow"`` the run is delegated to the mesoscale
    tier (:mod:`repro.mesoscale`); the result schema is identical.
    """
    if config.fidelity == "flow":
        if scenario is not None:
            raise ConfigurationError(
                "scenario reuse is packet-tier only; fidelity='flow' builds "
                "its own FlowEngine"
            )
        from repro.mesoscale.runner import run_flow_experiment

        return run_flow_experiment(config, keep_engine=keep_scenario)
    if scenario is None:
        scenario = build_scenario(config)
    env = scenario.env
    tracker = scenario.tracker
    tracker.when_done(env.stop)

    if config.workload_mode == "closed":
        # Closed-loop throughput is bounded by the per-client cycle time.
        cycle = 2 * config.mean_service_time + config.think_time + 1e-3
        concurrency = max(1, config.n_clients * config.closed_window)
        expected_duration = config.total_requests * cycle / concurrency
        safety_horizon = env.now + expected_duration * 10 + 10.0
    else:
        expected_duration = config.total_requests / config.arrival_rate()
        safety_horizon = env.now + expected_duration * 5 + 10.0

    started_wall = time.perf_counter()  # repro: noqa(DET002) - real wall time, reported only
    if scenario.background is not None:
        scenario.background.start()
    scenario.workload.start()
    env.run(until=safety_horizon)
    wall_time = time.perf_counter() - started_wall  # repro: noqa(DET002) - reported only
    # Unwind eager trunk accounting for packets still in flight at the stop
    # so fabric counters match what hop-by-hop forwarding would have counted.
    scenario.network.settle_trunks(env.now)

    if tracker.completed < tracker.expected:
        raise ReproError(
            f"run stalled: {tracker.completed}/{tracker.expected} requests "
            f"completed within the safety horizon ({safety_horizon:.1f}s sim)"
        )
    if len(scenario.recorder) == 0:
        raise ReproError("no latency samples were recorded")
    for sample in (scenario.recorder.mean(),):
        if math.isnan(sample):
            raise ReproError("latency statistics are NaN")

    result = ExperimentResult(
        config=config,
        latency=scenario.recorder,
        sim_duration=env.now,
        wall_time=wall_time,
        completed_requests=tracker.completed,
        transmissions=scenario.network.transmissions,
        bytes_transferred=scenario.network.bytes_transferred,
        netrs_overhead_bytes=scenario.network.netrs_overhead_bytes,
        events_executed=env.events_executed,
        write_latency=scenario.write_recorder,
        redundant_requests=sum(c.redundant_sent for c in scenario.clients),
        timeouts=sum(c.timeouts for c in scenario.clients),
        retries=sum(c.retries for c in scenario.clients),
        requests_lost=sum(c.requests_lost for c in scenario.clients),
        duplicates_suppressed=sum(
            c.duplicates_suppressed for c in scenario.clients
        ),
        packets_dropped=scenario.network.packets_dropped,
        server_dropped_requests=sum(
            s.dropped_requests for s in scenario.servers.values()
        ),
    )
    result.writes_completed = sum(c.writes_completed for c in scenario.clients)
    result.write_failures = sum(c.write_failures for c in scenario.clients)
    result.stale_reads = sum(c.stale_reads for c in scenario.clients)
    result.read_repairs = sum(c.read_repairs for c in scenario.clients)
    result.repair_writes_sent = sum(
        c.repair_writes_sent for c in scenario.clients
    )
    result.quorum_degraded_reads = sum(
        c.quorum_degraded_reads for c in scenario.clients
    )
    result.digest_probes_sent = sum(
        c.digest_probes_sent for c in scenario.clients
    )
    if scenario.churn is not None:
        result.churn_events = scenario.churn.churn_applied
        result.migrated_keys = scenario.churn.migrated_keys
        result.migration_bytes = scenario.churn.migration_bytes
    if scenario.faults is not None:
        result.faults_injected = scenario.faults.faults_injected
        result.unavailability = scenario.faults.unavailability(env.now)
    if scenario.plan is not None:
        result.rsnode_count = scenario.plan.rsnode_count
        result.drs_group_count = len(scenario.plan.drs_groups)
        result.plan_description = scenario.plan.describe()
    accelerators = scenario.accelerators()
    if accelerators:
        result.accelerator_max_utilization = max(
            acc.utilization() for acc in accelerators
        )
    if scenario.controller is not None:
        result.selector_requests_handled = sum(
            op.selector.requests_handled
            for op in scenario.controller.operators.values()
            if op.selector is not None
        )
    if keep_scenario:
        result.scenario = scenario  # type: ignore[attr-defined]
    return result
