"""Statistical helpers for repeated experiments.

The paper repeats each experiment over 3 random deployments; drawing
conclusions from so few repetitions needs confidence intervals, and
scheme-vs-scheme claims should use *paired* differences (both schemes run on
identical deployments per seed, so pairing removes deployment variance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Estimate:
    """A mean with a symmetric confidence interval."""

    mean: float
    half_width: float
    confidence: float
    samples: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {self.half_width:.2g}"


def mean_and_ci(samples: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Sample mean with a Student-t confidence interval.

    With one sample the half-width is infinite (honest, if unhelpful).
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    if not 0 < confidence < 1:
        raise ConfigurationError("confidence must be in (0, 1)")
    data = np.asarray(samples, dtype=float)
    n = len(data)
    mean = float(np.mean(data))
    if n == 1:
        return Estimate(mean=mean, half_width=math.inf, confidence=confidence, samples=1)
    variance = float(np.var(data, ddof=1))
    if variance == 0:
        return Estimate(mean=mean, half_width=0.0, confidence=confidence, samples=n)
    t_value = stats.t.ppf(0.5 + confidence / 2, df=n - 1)
    half_width = t_value * math.sqrt(variance / n)
    return Estimate(mean=mean, half_width=half_width, confidence=confidence, samples=n)


@dataclass(frozen=True, slots=True)
class PairedComparison:
    """Outcome of a paired scheme comparison (baseline minus other)."""

    mean_difference: float
    difference_ci: Estimate
    p_value: float
    significant: bool

    @property
    def other_is_faster(self) -> bool:
        """Whether the non-baseline scheme had lower latency on average."""
        return self.mean_difference > 0


def paired_comparison(
    baseline: Sequence[float],
    other: Sequence[float],
    *,
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired t-test of per-seed latencies: is ``other`` really different?

    ``baseline[i]`` and ``other[i]`` must come from the same seed (identical
    deployment, fluctuations and workload).
    """
    if len(baseline) != len(other):
        raise ConfigurationError("paired comparison needs equal-length samples")
    if len(baseline) < 2:
        raise ConfigurationError("paired comparison needs at least 2 pairs")
    differences = (
        np.asarray(baseline, dtype=float) - np.asarray(other, dtype=float)
    ).tolist()
    estimate = mean_and_ci(differences, confidence)
    if all(d == differences[0] for d in differences):
        p_value = 0.0 if differences[0] != 0 else 1.0
    else:
        _statistic, p_value = stats.ttest_rel(baseline, other)
        p_value = float(p_value)
    return PairedComparison(
        mean_difference=estimate.mean,
        difference_ci=estimate,
        p_value=p_value,
        significant=p_value < (1 - confidence),
    )
