"""Two-parameter grids: explore the operating space beyond single sweeps.

The paper varies one parameter per figure.  ``run_grid`` crosses two (e.g.
utilization x client count) for one or two schemes and renders the result as
an ASCII heatmap -- either a metric for one scheme, or the *reduction* of one
scheme against a baseline, which shows where in the operating space NetRS
pays off most.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec import ExecutionPolicy, Job, execute_jobs
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import METRICS, reduction

#: (row value, column value) -> scheme -> summary (ms).
GridCell = Tuple[Any, Any]


@dataclass
class GridResult:
    """Latency summaries across a two-parameter grid."""

    row_parameter: str
    column_parameter: str
    row_values: List[Any]
    column_values: List[Any]
    schemes: List[str]
    cells: Dict[GridCell, Dict[str, Dict[str, float]]] = field(
        default_factory=dict
    )

    def value(self, row: Any, column: Any, scheme: str, metric: str) -> float:
        """One metric (ms) at one grid point."""
        try:
            return self.cells[(row, column)][scheme][metric]
        except KeyError:
            raise ConfigurationError(
                f"no data at ({self.row_parameter}={row!r}, "
                f"{self.column_parameter}={column!r}, {scheme!r})"
            ) from None

    def reduction_at(
        self, row: Any, column: Any, baseline: str, other: str, metric: str
    ) -> float:
        """Latency reduction (%) of ``other`` vs ``baseline`` at one point."""
        return reduction(
            self.value(row, column, baseline, metric),
            self.value(row, column, other, metric),
        )


def run_grid(
    base: ExperimentConfig,
    *,
    row_parameter: str,
    row_values: Sequence[Any],
    column_parameter: str,
    column_values: Sequence[Any],
    schemes: Sequence[str],
    execution: Optional[ExecutionPolicy] = None,
) -> GridResult:
    """Run the full cross product (one seed; grids grow fast).

    The (row x column x scheme) cells are independent jobs executed through
    :mod:`repro.exec`, so ``execution`` buys the same parallelism, ledger
    spooling and resume that sweeps get.
    """
    for name in (row_parameter, column_parameter):
        if not hasattr(base, name):
            raise ConfigurationError(f"unknown config field {name!r}")
    if row_parameter == column_parameter:
        raise ConfigurationError("row and column parameters must differ")
    if not row_values or not column_values or not schemes:
        raise ConfigurationError("grid needs values on both axes and schemes")

    jobs: List[Job] = []
    cell_keys: Dict[GridCell, Dict[str, str]] = {}
    for row in row_values:
        for column in column_values:
            keys: Dict[str, str] = {}
            for scheme in schemes:
                config = dataclasses.replace(
                    base,
                    **{row_parameter: row, column_parameter: column},
                    scheme=scheme,
                )
                job = Job.from_config(config, len(jobs))
                jobs.append(job)
                keys[scheme] = job.key
            cell_keys[(row, column)] = keys
    outcomes = execute_jobs(jobs, policy=execution)

    result = GridResult(
        row_parameter=row_parameter,
        column_parameter=column_parameter,
        row_values=list(row_values),
        column_values=list(column_values),
        schemes=list(schemes),
    )
    for cell, keys in cell_keys.items():
        result.cells[cell] = {
            scheme: outcomes[key].summary for scheme, key in keys.items()
        }
    return result


#: Shade ramp for the heatmap, light to dark.
_SHADES = " .:-=+*#%@"


def format_heatmap(
    grid: GridResult,
    *,
    metric: str = "mean",
    scheme: str = "",
    baseline: str = "",
    other: str = "",
) -> str:
    """ASCII heatmap of a metric (one scheme) or a reduction (two schemes).

    Pass either ``scheme`` (absolute values) or ``baseline`` + ``other``
    (reduction of ``other`` vs ``baseline``, in percent).
    """
    if metric not in METRICS:
        raise ConfigurationError(f"unknown metric {metric!r}")
    showing_reduction = bool(baseline or other)
    if showing_reduction and not (baseline and other):
        raise ConfigurationError("reduction mode needs baseline and other")
    if not showing_reduction and not scheme:
        raise ConfigurationError("pass scheme=, or baseline= and other=")

    def cell_value(row: Any, column: Any) -> float:
        if showing_reduction:
            return grid.reduction_at(row, column, baseline, other, metric)
        return grid.value(row, column, scheme, metric)

    values = {
        (r, c): cell_value(r, c)
        for r in grid.row_values
        for c in grid.column_values
    }
    low = min(values.values())
    high = max(values.values())
    span = (high - low) or 1.0

    title = (
        f"{metric} reduction of {other} vs {baseline} (%)"
        if showing_reduction
        else f"{metric} latency of {scheme} (ms)"
    )
    row_width = max(len(str(r)) for r in grid.row_values)
    row_width = max(row_width, len(grid.row_parameter))
    cell_width = max(max(len(f"{v:.1f}") for v in values.values()), 6)

    lines = [title]
    header = grid.row_parameter.rjust(row_width) + " | " + "  ".join(
        str(c).rjust(cell_width) for c in grid.column_values
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in grid.row_values:
        cells = []
        for column in grid.column_values:
            value = values[(row, column)]
            shade = _SHADES[
                min(len(_SHADES) - 1, int((value - low) / span * len(_SHADES)))
            ]
            cells.append(f"{value:.1f}{shade}".rjust(cell_width))
        lines.append(str(row).rjust(row_width) + " | " + "  ".join(cells))
    lines.append(
        f"(columns: {grid.column_parameter}; shade ramp "
        f"'{_SHADES.strip()}' = low to high)"
    )
    return "\n".join(lines)
