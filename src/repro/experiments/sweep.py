"""Parameter sweeps: the engine behind every paper figure.

A figure in the paper is one parameter swept over a few values, four schemes
per value, three seeds per (value, scheme), and four latency metrics per run.
:func:`run_sweep` enumerates exactly that grid as deterministic jobs,
executes them through :mod:`repro.exec` (serially by default, in parallel
with an :class:`~repro.exec.ExecutionPolicy`), and returns a
:class:`SweepResult` the table formatter and benchmarks consume.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec import ExecutionPolicy, Job, execute_jobs
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import METRICS, mean_of_summaries

#: (parameter value, scheme) -> averaged metric summary in milliseconds.
Cell = Tuple[Any, str]


@dataclass
class SweepResult:
    """Grid of averaged latency summaries."""

    parameter: str
    values: List[Any]
    schemes: List[str]
    repetitions: int
    cells: Dict[Cell, Dict[str, float]] = field(default_factory=dict)
    extras: Dict[Cell, Dict[str, float]] = field(default_factory=dict)
    #: Per-repetition summaries (same order as seeds), for statistics.
    raw: Dict[Cell, List[Dict[str, float]]] = field(default_factory=dict)

    def summary(self, value: Any, scheme: str) -> Dict[str, float]:
        """Averaged latency metrics (ms) for one grid cell."""
        try:
            return self.cells[(value, scheme)]
        except KeyError:
            raise ConfigurationError(
                f"no data for {self.parameter}={value!r}, scheme={scheme!r}"
            ) from None

    def series(self, scheme: str, metric: str) -> List[float]:
        """One plotted line of the figure: ``metric`` across all values."""
        if metric not in METRICS:
            raise ConfigurationError(f"unknown metric {metric!r}")
        if scheme not in self.schemes:
            raise ConfigurationError(
                f"unknown scheme {scheme!r}; swept: {', '.join(self.schemes)}"
            )
        return [self.summary(value, scheme)[metric] for value in self.values]

    def confidence_interval(self, value: Any, scheme: str, metric: str):
        """Mean +/- t-based CI of a metric over the repetitions."""
        from repro.experiments.statistics import mean_and_ci

        summaries = self.raw.get((value, scheme))
        if not summaries:
            raise ConfigurationError(
                f"no raw repetition data for {self.parameter}={value!r}, "
                f"scheme={scheme!r}"
            )
        return mean_and_ci([s[metric] for s in summaries])

    def compare_schemes(self, value: Any, baseline: str, other: str, metric: str):
        """Paired per-seed comparison of two schemes at one sweep value."""
        from repro.experiments.statistics import paired_comparison

        baseline_raw = self.raw.get((value, baseline))
        other_raw = self.raw.get((value, other))
        if not baseline_raw or not other_raw:
            raise ConfigurationError("both schemes need raw repetition data")
        return paired_comparison(
            [s[metric] for s in baseline_raw],
            [s[metric] for s in other_raw],
        )

    def to_json(self) -> str:
        """Machine-readable dump: parameter, values, per-scheme series."""
        import json

        payload = {
            "parameter": self.parameter,
            "values": self.values,
            "schemes": self.schemes,
            "repetitions": self.repetitions,
            "metrics_ms": {
                scheme: {
                    metric: self.series(scheme, metric) for metric in METRICS
                }
                for scheme in self.schemes
            },
        }
        return json.dumps(payload, indent=2)


def sweep_jobs(
    base: ExperimentConfig,
    *,
    parameter: str,
    values: Sequence[Any],
    schemes: Sequence[str],
    repetitions: int = 1,
    overrides: Optional[Dict[str, Any]] = None,
) -> Tuple[List[Job], Dict[Cell, List[str]]]:
    """Enumerate the (value x scheme x seed) grid as deterministic jobs.

    Returns the job batch (in canonical submission order) and the mapping
    from each grid cell to the job keys of its repetitions, in seed order.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    if not schemes:
        raise ConfigurationError("sweep needs at least one scheme")
    if repetitions < 1:
        raise ConfigurationError("repetitions must be >= 1")
    if not hasattr(base, parameter):
        raise ConfigurationError(f"unknown config field {parameter!r}")

    jobs: List[Job] = []
    cell_keys: Dict[Cell, List[str]] = {}
    for value in values:
        for scheme in schemes:
            keys: List[str] = []
            for rep in range(repetitions):
                changes: Dict[str, Any] = {
                    parameter: value,
                    "scheme": scheme,
                    "seed": base.seed + rep,
                }
                if overrides:
                    changes.update(overrides)
                config = dataclasses.replace(base, **changes)
                job = Job.from_config(config, len(jobs))
                jobs.append(job)
                keys.append(job.key)
            cell_keys[(value, scheme)] = keys
    return jobs, cell_keys


def run_sweep(
    base: ExperimentConfig,
    *,
    parameter: str,
    values: Sequence[Any],
    schemes: Sequence[str],
    repetitions: int = 1,
    overrides: Optional[Dict[str, Any]] = None,
    execution: Optional[ExecutionPolicy] = None,
) -> SweepResult:
    """Run the full (value x scheme x seed) grid for one figure.

    ``parameter`` names an :class:`ExperimentConfig` field; each repetition
    r runs with ``seed = base.seed + r`` so schemes are compared on identical
    deployments, matching the paper's repeated random deployments.

    ``execution`` controls parallelism, the run ledger and resume (see
    :class:`repro.exec.ExecutionPolicy`); the default runs serially,
    in-process, with no spooling -- bit-identical to the historical harness.
    """
    jobs, cell_keys = sweep_jobs(
        base,
        parameter=parameter,
        values=values,
        schemes=schemes,
        repetitions=repetitions,
        overrides=overrides,
    )
    outcomes = execute_jobs(jobs, policy=execution)

    result = SweepResult(
        parameter=parameter,
        values=list(values),
        schemes=list(schemes),
        repetitions=repetitions,
    )
    for cell, keys in cell_keys.items():
        runs = [outcomes[key] for key in keys]
        summaries = [run.summary for run in runs]
        result.cells[cell] = mean_of_summaries(summaries)
        result.raw[cell] = summaries
        result.extras[cell] = {
            "rsnode_count": sum(r.rsnode_count for r in runs) / len(runs),
            "redundant_requests": sum(r.redundant_requests for r in runs)
            / len(runs),
            # Failure-aware counters (zero unless faults/timeouts are
            # configured; see docs/FAULTS.md), averaged over repetitions
            # like the other extras.
            "timeouts": sum(r.timeouts for r in runs) / len(runs),
            "retries": sum(r.retries for r in runs) / len(runs),
            "requests_lost": sum(r.requests_lost for r in runs) / len(runs),
            "packets_dropped": sum(r.packets_dropped for r in runs)
            / len(runs),
            "unavailability": sum(r.unavailability for r in runs) / len(runs),
        }
        result.extras[cell].update(
            {
                # Consistency counters (zero on read-only static-membership
                # runs; see docs/CONSISTENCY.md), averaged like the rest.
                name: sum(getattr(r, name) for r in runs) / len(runs)
                for name in (
                    "writes_completed",
                    "write_failures",
                    "stale_reads",
                    "read_repairs",
                    "migrated_keys",
                    "migration_bytes",
                    "churn_events",
                )
            }
        )
    return result
