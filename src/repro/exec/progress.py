"""Progress reporting for long experiment runs.

Emits ``jobs done/total``, an ETA extrapolated from the observed per-job
rate, and worker utilization (sum of per-job wall time over elapsed wall
time times pool size) to stderr.  On a TTY the line redraws in place;
otherwise each update is a full line so logs stay readable.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.exec.job import JobOutcome


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Incremental ``done/total`` + ETA + utilization reporter."""

    def __init__(
        self,
        *,
        workers: int = 1,
        label: str = "exec",
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.workers = max(1, workers)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.skipped = 0
        self.busy_time = 0.0
        self._started = 0.0

    def start(self, total: int, skipped: int = 0) -> None:
        """Begin a run of ``total`` jobs, ``skipped`` of them resumed."""
        self.total = total
        self.done = skipped
        self.skipped = skipped
        self.busy_time = 0.0
        self._started = time.monotonic()
        if skipped:
            self._emit(f"resume: {skipped}/{total} jobs already in ledger")
        self._render()

    def job_done(self, outcome: JobOutcome) -> None:
        """Record one freshly completed job and redraw."""
        self.done += 1
        self.busy_time += outcome.wall_time
        self._render()

    def finish(self) -> None:
        """Final summary line."""
        elapsed = time.monotonic() - self._started
        if self._is_tty():
            self.stream.write("\n")
        self._emit(
            f"done: {self.done}/{self.total} jobs in {elapsed:.1f}s "
            f"({self.skipped} resumed)"
        )

    # ------------------------------------------------------------------
    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty and isatty())

    def _emit(self, message: str) -> None:
        self.stream.write(f"[{self.label}] {message}\n")
        self.stream.flush()

    def _render(self) -> None:
        elapsed = time.monotonic() - self._started
        fresh = self.done - self.skipped
        remaining = self.total - self.done
        parts = [f"{self.done}/{self.total} jobs"]
        if self.total:
            parts.append(f"{100.0 * self.done / self.total:.0f}%")
        if fresh > 0 and remaining > 0:
            parts.append(f"eta {_format_eta(elapsed / fresh * remaining)}")
        if fresh > 0 and elapsed > 0:
            utilization = min(1.0, self.busy_time / (elapsed * self.workers))
            parts.append(f"workers={self.workers} util={utilization * 100:.0f}%")
        line = f"[{self.label}] " + "  ".join(parts)
        if self._is_tty():
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
