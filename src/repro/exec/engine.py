"""The execution engine: worker pool, retries, ledger, deterministic merge.

``execute_jobs`` runs a batch of :class:`~repro.exec.job.Job` instances and
returns their outcomes keyed and ordered by job key.  Guarantees:

* **Determinism** -- each job is a fully seeded experiment, so its outcome
  is a pure function of its config.  Results are merged in job-key order,
  never completion order; parallel output is byte-identical to serial.
* **Serial by default** -- with ``workers <= 1`` everything runs in-process
  in submission order, exactly like the pre-engine harness.
* **Spawn safety** -- the pool uses the ``spawn`` start method so workers
  hold no forked simulator state; jobs and runners must be picklable.
* **Retry + graceful degradation** -- a job that raises inside a worker is
  retried there; if the worker still fails (or the pool machinery itself
  dies, e.g. ``spawn`` is unavailable) the job falls back to one in-process
  attempt before :class:`~repro.errors.ExecutionError` is raised.
* **Resumability** -- with a ledger, every completed job is spooled to
  JSONL immediately; ``resume=True`` skips jobs whose key and config digest
  already have a recorded outcome.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, ExecutionError
from repro.exec.job import Job, JobOutcome, outcome_from_result
from repro.exec.ledger import RunLedger
from repro.exec.progress import ProgressReporter

#: A runner turns one job into an outcome (raises on failure).  It executes
#: inside worker processes, so it must be a picklable (module-level) callable.
Runner = Callable[[Job], JobOutcome]


def run_job(job: Job) -> JobOutcome:
    """The default runner: one full simulated experiment."""
    from repro.experiments.runner import run_experiment

    return outcome_from_result(job, run_experiment(job.config))


def default_run_dir(jobs: Sequence[Job], root: Union[str, Path] = ".netrs-runs") -> Path:
    """A run directory derived from the job batch's content digests.

    Re-issuing the same command enumerates the same jobs and therefore maps
    to the same directory, which is what makes bare ``--resume`` work.
    """
    batch = hashlib.sha256(
        "\n".join(f"{job.key}:{job.digest}" for job in jobs).encode("utf-8")
    ).hexdigest()[:12]
    return Path(root) / batch


@dataclass
class ExecutionPolicy:
    """How a batch of jobs should be executed (CLI flags, resolved once)."""

    workers: int = 1
    run_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    retries: int = 1
    progress: Optional[ProgressReporter] = None

    def make_ledger(self, jobs: Sequence[Job]) -> Optional[RunLedger]:
        """The ledger this policy implies (None = no spooling)."""
        if self.run_dir is not None:
            return RunLedger(self.run_dir)
        if self.resume:
            return RunLedger(default_run_dir(jobs))
        return None


def execute_jobs(
    jobs: Sequence[Job],
    *,
    policy: Optional[ExecutionPolicy] = None,
    runner: Runner = run_job,
) -> Dict[str, JobOutcome]:
    """Execute a job batch under ``policy``; outcomes ordered by job key."""
    policy = policy or ExecutionPolicy()
    jobs = list(jobs)
    if len({job.key for job in jobs}) != len(jobs):
        raise ConfigurationError("job keys must be unique within a batch")

    outcomes: Dict[str, JobOutcome] = {}
    pending = jobs
    ledger = policy.make_ledger(jobs)
    if ledger is not None:
        if policy.resume:
            cached = ledger.load()
            pending = []
            for job in jobs:
                hit = cached.get(job.key)
                if hit is not None and hit.digest == job.digest:
                    outcomes[job.key] = hit
                else:
                    pending.append(job)
        else:
            ledger.reset()

    progress = policy.progress
    if progress is not None:
        progress.start(total=len(jobs), skipped=len(jobs) - len(pending))

    def complete(outcome: JobOutcome) -> None:
        outcomes[outcome.key] = outcome
        if ledger is not None:
            ledger.record(outcome)
        if progress is not None:
            progress.job_done(outcome)

    retries = max(0, policy.retries)
    if policy.workers > 1 and len(pending) > 1:
        failures = _execute_parallel(
            pending,
            workers=policy.workers,
            runner=runner,
            retries=retries,
            complete=complete,
        )
        for job, worker_error in failures:
            # Graceful degradation: one last in-process attempt.
            try:
                complete(_run_with_retries(runner, job, retries=0))
            except Exception as exc:
                raise ExecutionError(
                    f"job {job.key} failed in a worker and again in-process: "
                    f"{exc!r}\nworker error:\n{worker_error}"
                ) from exc
    else:
        for job in pending:
            try:
                complete(_run_with_retries(runner, job, retries))
            except Exception as exc:
                raise ExecutionError(
                    f"job {job.key} failed after {retries + 1} attempt(s): {exc!r}"
                ) from exc

    if progress is not None:
        progress.finish()
    return {job.key: outcomes[job.key] for job in sorted(jobs, key=lambda j: j.key)}


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _run_with_retries(runner: Runner, job: Job, retries: int) -> JobOutcome:
    """Run one job, retrying on any exception; annotates attempt count."""
    for attempt in range(1, retries + 2):
        try:
            outcome = runner(job)
            outcome.attempts = attempt
            return outcome
        except Exception:
            if attempt > retries:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


def _worker(payload: Tuple[Job, Runner, int]):
    """Pool worker entry point: never raises, reports errors as data."""
    job, runner, retries = payload
    try:
        return ("ok", job.key, _run_with_retries(runner, job, retries))
    except Exception:
        return ("error", job.key, traceback.format_exc())


def _execute_parallel(
    pending: Sequence[Job],
    *,
    workers: int,
    runner: Runner,
    retries: int,
    complete: Callable[[JobOutcome], None],
) -> List[Tuple[Job, str]]:
    """Run jobs on a spawn pool; return jobs needing in-process fallback.

    Outcomes stream to ``complete`` as they finish, so the ledger stays
    valid even if the batch is interrupted.  ``ProcessPoolExecutor`` (not
    ``multiprocessing.Pool``) is deliberate: a worker that dies before it
    can even unpickle a task -- hard crash, unimportable ``__main__`` under
    spawn -- breaks the pool and fails the remaining futures, where ``Pool``
    would silently respawn crashing workers forever.  Every job whose
    future errors is handed back for the in-process fallback.
    """
    by_key = {job.key: job for job in pending}
    done: set = set()
    failures: List[Tuple[Job, str]] = []
    context = multiprocessing.get_context("spawn")
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=context
        ) as pool:
            futures = {
                pool.submit(_worker, (job, runner, retries)): job
                for job in pending
            }
            for future in as_completed(futures):
                job = futures[future]
                try:
                    status, key, value = future.result()
                except Exception as exc:  # worker died / pool broke
                    failures.append((job, f"worker pool failure: {exc!r}"))
                    continue
                if status == "ok":
                    complete(value)
                    done.add(key)
                else:
                    failures.append((by_key[key], value))
    except Exception as exc:
        # The pool could not even be constructed (e.g. no spawn support).
        handled = done | {job.key for job, _ in failures}
        for job in pending:
            if job.key not in handled:
                failures.append((job, f"worker pool unavailable: {exc!r}"))
    return failures
