"""Parallel experiment execution: jobs, worker pool, ledger, resume.

The sweep/grid/figure harness enumerates every ``(config, scheme, seed)``
cell into deterministic :class:`Job` instances and hands the batch to
:func:`execute_jobs`, which runs it serially (the default -- bit-identical
to the historical harness) or on a spawn-safe worker pool, spooling each
completed job to a JSONL :class:`RunLedger` so interrupted runs resume
without repeating finished work.  See ``docs/EXECUTION.md``.
"""

from repro.exec.engine import (
    ExecutionPolicy,
    Runner,
    default_run_dir,
    execute_jobs,
    run_job,
)
from repro.exec.job import Job, JobOutcome, config_digest, outcome_from_result
from repro.exec.ledger import LEDGER_NAME, RunLedger
from repro.exec.progress import ProgressReporter

__all__ = [
    "ExecutionPolicy",
    "Job",
    "JobOutcome",
    "LEDGER_NAME",
    "ProgressReporter",
    "RunLedger",
    "Runner",
    "config_digest",
    "default_run_dir",
    "execute_jobs",
    "outcome_from_result",
    "run_job",
]
