"""Job model: one deterministic experiment run with a stable identity.

A job is a fully resolved :class:`~repro.experiments.config.ExperimentConfig`
(scheme and seed already substituted) plus two identifiers:

* ``key`` -- orders jobs.  It embeds the zero-padded enumeration index, so
  sorting outcomes by key reproduces the exact submission order; parallel
  output merges byte-identical to a serial run.
* ``digest`` -- a content hash over every config field.  The run ledger
  stores it with each outcome, so ``--resume`` only reuses a cached result
  when the job it belongs to is genuinely the same experiment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # imported lazily: experiments itself builds on repro.exec
    from repro.experiments.config import ExperimentConfig


#: Fields elided from the digest payload while they hold their default.
#: Adding a config field changes every digest and silently invalidates all
#: existing ledgers; eliding the default keeps pre-existing job identities
#: stable (a job that never named the field *is* the same experiment).
#: Rule CON003 (``netrs contracts``) enforces this: every field newer than
#: the founding set in ``repro.experiments.contracts`` must have an entry
#: here whose value equals the field's declared default.
_DIGEST_DEFAULTS: Dict[str, Any] = {
    "fidelity": "packet",
    "vector_batch": 0,
    "shards": 1,
    "read_quorum": None,
    "churn_schedule": None,
}


def config_digest(config: "ExperimentConfig") -> str:
    """Stable content hash over every field of ``config``.

    Fields listed in :data:`_DIGEST_DEFAULTS` are dropped from the payload
    when they equal their default, so ledgers written before those fields
    existed keep matching resumed jobs (forward compatibility).
    """
    fields = dataclasses.asdict(config)
    for name, default in _DIGEST_DEFAULTS.items():
        if fields.get(name) == default:
            fields.pop(name, None)
    payload = json.dumps(fields, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Job:
    """One deterministic ``(ExperimentConfig, scheme, seed)`` run."""

    key: str
    digest: str
    config: "ExperimentConfig"

    @classmethod
    def from_config(cls, config: "ExperimentConfig", index: int) -> "Job":
        """Build a job from a resolved config and its enumeration index."""
        config.validate()
        key = f"{index:05d}-{config.scheme}-s{config.seed}"
        return cls(key=key, digest=config_digest(config), config=config)


@dataclass
class JobOutcome:
    """The picklable measurement payload of one completed job.

    This is the subset of :class:`~repro.experiments.runner.ExperimentResult`
    that sweeps and grids consume, flattened so it crosses process
    boundaries and serialises to one JSONL ledger line.
    """

    key: str
    digest: str
    summary: Dict[str, float] = field(default_factory=dict)
    rsnode_count: int = 0
    drs_group_count: int = 0
    redundant_requests: int = 0
    completed_requests: int = 0
    sim_duration: float = 0.0
    wall_time: float = 0.0
    events_executed: int = 0
    micro_events: int = 0  # flow-tier internal events (fidelity="flow")
    attempts: int = 1
    # Failure-aware counters (zero on fault-free runs; see docs/FAULTS.md).
    # ``from_record`` ignores unknown fields, so ledgers written before
    # these existed still resume cleanly.
    timeouts: int = 0
    retries: int = 0
    requests_lost: int = 0
    packets_dropped: int = 0
    unavailability: float = 0.0
    # Consistency counters (zero on read-only static-membership runs; see
    # docs/CONSISTENCY.md).  Same forward-compat story as the fault counters.
    writes_completed: int = 0
    write_failures: int = 0
    stale_reads: int = 0
    read_repairs: int = 0
    migrated_keys: int = 0
    migration_bytes: int = 0
    churn_events: int = 0
    write_summary: Dict[str, float] = field(default_factory=dict)
    # Shard payload (fidelity="flow" with shards > 1; see repro.mesoscale.shard).
    # Recorded latency samples travel with the outcome so the key-ordered merge
    # reproduces the serial sample order exactly; ``counters`` carries the
    # flow-tier traffic/fault counters the merged result sums.  Both default
    # empty, so pre-existing ledgers (which never wrote them) still resume.
    samples: list = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """One JSON-safe ledger record."""
        return dataclasses.asdict(self)

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "JobOutcome":
        """Inverse of :meth:`to_record`; ignores unknown fields."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})


def outcome_from_result(job: Job, result) -> JobOutcome:
    """Flatten an :class:`ExperimentResult` into a :class:`JobOutcome`."""
    return JobOutcome(
        key=job.key,
        digest=job.digest,
        summary=result.summary(),
        rsnode_count=result.rsnode_count,
        drs_group_count=result.drs_group_count,
        redundant_requests=result.redundant_requests,
        completed_requests=result.completed_requests,
        sim_duration=result.sim_duration,
        wall_time=result.wall_time,
        events_executed=result.events_executed,
        micro_events=result.micro_events,
        timeouts=result.timeouts,
        retries=result.retries,
        requests_lost=result.requests_lost,
        packets_dropped=result.packets_dropped,
        unavailability=result.unavailability,
        writes_completed=result.writes_completed,
        write_failures=result.write_failures,
        stale_reads=result.stale_reads,
        read_repairs=result.read_repairs,
        migrated_keys=result.migrated_keys,
        migration_bytes=result.migration_bytes,
        churn_events=result.churn_events,
        write_summary=result.write_summary() or {},
    )
