"""Run ledger: a JSONL spool of completed jobs under a run directory.

Each completed job appends exactly one line, flushed immediately, so an
interrupted sweep leaves a ledger that is valid up to (at worst) one
truncated trailing line.  ``--resume`` loads the ledger and skips every job
whose key *and* config digest match a recorded outcome; a changed config
re-runs even if the key collides.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import ConfigurationError
from repro.exec.job import JobOutcome

#: File name of the spool inside a run directory.
LEDGER_NAME = "ledger.jsonl"

#: Bumped when the record layout changes incompatibly.
SCHEMA_VERSION = 1


class RunLedger:
    """Append-only JSONL spool of :class:`JobOutcome` records."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / LEDGER_NAME

    def _ensure_run_dir(self) -> None:
        try:
            self.run_dir.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigurationError(
                f"run directory {self.run_dir} exists and is not a directory"
            ) from exc

    def reset(self) -> None:
        """Start a fresh run: drop any spool left by a previous one."""
        self._ensure_run_dir()
        if self.path.exists():
            self.path.unlink()

    def record(self, outcome: JobOutcome) -> None:
        """Append one completed job, durable against interruption."""
        self._ensure_run_dir()
        record = {"schema": SCHEMA_VERSION}
        record.update(outcome.to_record())
        with self.path.open("a", encoding="utf-8") as spool:
            spool.write(json.dumps(record) + "\n")
            spool.flush()

    def load(self) -> Dict[str, JobOutcome]:
        """Completed outcomes by job key (later records win).

        Malformed lines -- e.g. a line truncated by the interrupt that the
        resume is recovering from -- are skipped, not fatal.
        """
        outcomes: Dict[str, JobOutcome] = {}
        if not self.path.exists():
            return outcomes
        with self.path.open("r", encoding="utf-8") as spool:
            for line in spool:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if record.get("schema") != SCHEMA_VERSION:
                    continue
                if "key" not in record or "digest" not in record:
                    continue
                outcomes[record["key"]] = JobOutcome.from_record(record)
        return outcomes

    def __len__(self) -> int:
        return len(self.load())
