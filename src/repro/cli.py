"""Command-line interface: ``netrs`` (or ``python -m repro``).

Subcommands:

* ``run``      -- one experiment, printing the latency summary,
* ``figure``   -- reproduce one of the paper's figures (fig4..fig7),
* ``compare``  -- all four schemes on one configuration with reductions,
* ``topology`` -- fat-tree facts for a given arity,
* ``plan``     -- solve and display an RSNode placement for a config,
* ``lint``     -- determinism sanitizer over the source tree (see
  ``docs/LINTING.md``),
* ``contracts`` -- contract sanitizer: static mirror/kernel/digest drift
  detection (rules ``CON001``..``CON003``; equivalent to
  ``netrs lint --contracts-only``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.experiments.config import SCHEMES, ExperimentConfig
from repro.experiments.figures import FIGURES, base_config, run_figure
from repro.experiments.metrics import METRICS
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.experiments.sweep import run_sweep
from repro.experiments.tables import format_figure, format_reductions
from repro.network.fattree import fat_tree_dimensions


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default 1 = serial; output is identical)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs already completed in the run ledger",
    )
    parser.add_argument(
        "--run-dir",
        default="",
        help="directory for the JSONL run ledger "
        "(default: derived under .netrs-runs/ when --resume is given)",
    )


def _execution_from_args(args: argparse.Namespace) -> "ExecutionPolicy":
    from repro.exec import ExecutionPolicy, ProgressReporter

    progress = None
    if args.jobs > 1 or args.resume:
        progress = ProgressReporter(workers=max(1, args.jobs))
    return ExecutionPolicy(
        workers=max(1, args.jobs),
        run_dir=args.run_dir or None,
        resume=args.resume,
        progress=progress,
    )


def _add_common_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        choices=("small", "paper"),
        default="small",
        help="parameter profile (default: small scale-down)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--requests",
        type=int,
        default=0,
        help="override total request count (0 = profile default)",
    )
    parser.add_argument("--clients", type=int, default=0, help="override client count")
    parser.add_argument("--servers", type=int, default=0, help="override server count")
    parser.add_argument(
        "--utilization", type=float, default=0.0, help="override nominal utilization"
    )
    parser.add_argument(
        "--skew", type=float, default=0.0, help="demand skew fraction (0 = none)"
    )
    parser.add_argument(
        "--faults",
        default="",
        help="fault schedule spec, e.g. "
        "'server-down@0.05:server#0;server-up@0.1:server#0' "
        "(see docs/FAULTS.md)",
    )
    parser.add_argument(
        "--write-fraction",
        type=float,
        default=0.0,
        help="share of requests issued as quorum writes "
        "(see docs/CONSISTENCY.md)",
    )
    parser.add_argument(
        "--write-quorum",
        type=int,
        default=0,
        help="acks a write waits for before completing "
        "(0 = all replicas; see docs/CONSISTENCY.md)",
    )
    parser.add_argument(
        "--read-quorum",
        type=int,
        default=0,
        help="replicas consulted per read: data from one plus version "
        "digests from R-1 (0 = single replica; see docs/CONSISTENCY.md)",
    )
    parser.add_argument(
        "--churn-schedule",
        default="",
        help="membership churn spec, e.g. "
        "'node-leave@0.03:server#0;node-join@0.06:server#0' "
        "(see docs/CONSISTENCY.md)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=0.0,
        help="client request timeout in seconds (0 = never time out)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=-1,
        help="retransmissions per timed-out request (-1 = config default)",
    )
    parser.add_argument(
        "--fidelity",
        choices=("packet", "flow"),
        default="packet",
        help="simulation tier: 'packet' (hop-by-hop) or 'flow' "
        "(mesoscale, see docs/MESOSCALE.md)",
    )
    parser.add_argument(
        "--engine-backend",
        choices=("auto", "python", "numba", "cython"),
        default="auto",
        help="event-core kernels: 'auto' picks the fastest installed "
        "backend; explicit names fail if unavailable (see docs/SIMULATOR.md)",
    )
    parser.add_argument(
        "--vector-batch",
        type=int,
        default=0,
        help="flow tier only: SoA request-block length for the vectorized "
        "fast path (0 = scalar flow engine; see docs/MESOSCALE.md)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="flow tier only: split the run into N independent shards "
        "executed as repro.exec jobs (see docs/MESOSCALE.md)",
    )


def _config_from_args(args: argparse.Namespace, scheme: str) -> ExperimentConfig:
    overrides = {}
    if args.requests:
        overrides["total_requests"] = args.requests
    if args.clients:
        overrides["n_clients"] = args.clients
    if args.servers:
        overrides["n_servers"] = args.servers
    if args.utilization:
        overrides["utilization"] = args.utilization
    if args.skew:
        overrides["demand_skew"] = args.skew
    if getattr(args, "faults", ""):
        overrides["fault_schedule"] = args.faults
    if getattr(args, "write_fraction", 0.0):
        overrides["write_fraction"] = args.write_fraction
    if getattr(args, "write_quorum", 0):
        overrides["write_quorum"] = args.write_quorum
    if getattr(args, "read_quorum", 0):
        overrides["read_quorum"] = args.read_quorum
    if getattr(args, "churn_schedule", ""):
        overrides["churn_schedule"] = args.churn_schedule
    if getattr(args, "request_timeout", 0.0):
        overrides["request_timeout"] = args.request_timeout
    if getattr(args, "max_retries", -1) >= 0:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "fidelity", "packet") != "packet":
        overrides["fidelity"] = args.fidelity
    if getattr(args, "engine_backend", "auto") != "auto":
        overrides["engine_backend"] = args.engine_backend
    if getattr(args, "vector_batch", 0):
        overrides["vector_batch"] = args.vector_batch
    if getattr(args, "shards", 1) > 1:
        overrides["shards"] = args.shards
    return base_config(args.profile, seed=args.seed, scheme=scheme, **overrides)


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args, args.scheme)
    result = run_experiment(config)
    print(result.describe())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from_args(args, "clirs")
    sweep = run_sweep(
        config,
        parameter="seed",
        values=[config.seed],
        schemes=list(args.schemes),
        repetitions=args.repetitions,
        execution=_execution_from_args(args),
    )
    print(format_figure(sweep, title="scheme comparison"))
    if "clirs" in args.schemes and "netrs-ilp" in args.schemes:
        print()
        print(format_reductions(sweep))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.metrics import METRICS
    from repro.experiments.tables import format_bars, format_markdown_report

    sweep = run_figure(
        args.figure,
        profile=args.profile,
        seed=args.seed,
        repetitions=args.repetitions,
        total_requests=args.requests,
        execution=_execution_from_args(args),
    )
    title = FIGURES[args.figure].title
    if args.markdown:
        print(format_markdown_report(sweep, title=title))
        return 0
    print(format_figure(sweep, title=title))
    print()
    print(format_reductions(sweep))
    if args.bars:
        for metric in METRICS:
            print()
            print(format_bars(sweep, metric))
    return 0


def _cmd_factors(args: argparse.Namespace) -> int:
    from repro.analysis import attach_probes, jain_fairness
    from repro.experiments.runner import run_experiment as _run

    for scheme in args.schemes:
        config = _config_from_args(args, scheme)
        scenario = build_scenario(config)
        probes = attach_probes(scenario)
        result = _run(config, scenario=scenario)
        staleness = probes.staleness.summary()
        herd = probes.queues.summary()
        print(f"=== {scheme} ===")
        print(f"  mean latency: {result.summary()['mean']:.3f} ms")
        print(
            f"  feedback age at selection: mean "
            f"{staleness['mean_age']*1e3:.2f} ms "
            f"({staleness['cold_selections']:.0f} cold selections)"
        )
        print(
            f"  queue imbalance: CV {herd.mean_cv:.3f}, oscillation in "
            f"{herd.oscillation_fraction*100:.1f}% of samples"
        )
        print(
            f"  load fairness (Jain): "
            f"{jain_fairness(probes.trace.per_server_counts()):.4f}"
        )
        means = probes.trace.decomposition_means()
        print(
            "  latency breakdown (ms): "
            f"selection {means['selection']*1e3:.3f}, "
            f"queue {means['server_queue']*1e3:.3f}, "
            f"service {means['server_service']*1e3:.3f}, "
            f"network {means['network']*1e3:.3f}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis import attach_probes
    from repro.experiments.runner import run_experiment as _run

    config = _config_from_args(args, args.scheme)
    scenario = build_scenario(config)
    probes = attach_probes(scenario, staleness=False, queues=False)
    _run(config, scenario=scenario)
    probes.trace.write_csv(args.output)
    print(f"wrote {len(probes.trace)} request records to {args.output}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_bars

    base = _config_from_args(args, "clirs")
    field_type = type(getattr(base, args.parameter, 0.0))
    values = [field_type(v) if field_type in (int, float) else v for v in args.values]
    sweep = run_sweep(
        base,
        parameter=args.parameter,
        values=values,
        schemes=list(args.schemes),
        repetitions=args.repetitions,
        execution=_execution_from_args(args),
    )
    print(format_figure(sweep, title=f"sweep of {args.parameter}"))
    if args.bars:
        print()
        print(format_bars(sweep, "mean"))
    if "clirs" in args.schemes and "netrs-ilp" in args.schemes:
        print()
        print(format_reductions(sweep))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.experiments.claims import ClaimVerifier, format_claims

    base = _config_from_args(args, "clirs")
    verifier = ClaimVerifier(base_config=base)
    checks = verifier.all_claims()
    print(format_claims(checks))
    return 0 if all(c.passed for c in checks) else 1


def _cmd_topology(args: argparse.Namespace) -> int:
    dims = fat_tree_dimensions(args.k)
    print(f"{args.k}-ary fat-tree:")
    for key, value in dims.items():
        print(f"  {key}: {value}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    scheme = args.scheme
    config = _config_from_args(args, scheme)
    scenario = build_scenario(config)
    plan = scenario.plan
    if plan is None:
        print("scheme does not use NetRS; no plan to show")
        return 1
    from repro.core.placement.report import plan_report

    assert scenario.controller is not None
    controller = scenario.controller
    problem = controller.build_problem(controller.measured_traffic())
    # Before any traffic flows the monitors are empty; report against the
    # bootstrap estimate the plan was actually solved with.
    if all(sum(rates) == 0 for rates in problem.traffic.values()):
        from repro.core.placement.problem import estimate_traffic

        rate = config.arrival_rate()
        index = {name: i for i, name in enumerate(scenario.client_hosts)}
        group_rates = {
            g.group_id: rate
            * sum(
                float(scenario.weights.probabilities[index[h]])
                for h in g.hosts
            )
            for g in controller.groups
        }
        problem = controller.build_problem(
            estimate_traffic(
                controller.groups,
                topology=scenario.topology,
                server_hosts=scenario.server_hosts,
                group_rates=group_rates,
            )
        )
    print(plan_report(problem, plan))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(list(args.lint_args))


def _cmd_contracts(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(["--contracts-only", *args.contract_args])


def _cmd_validate_fidelity(args: argparse.Namespace) -> int:
    from repro.mesoscale.validate import main as fidelity_main

    return fidelity_main(list(args.fidelity_args))


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="netrs",
        description="NetRS reproduction: in-network replica selection",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("scheme", choices=SCHEMES)
    _add_common_run_options(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = sub.add_parser("compare", help="compare schemes")
    compare_parser.add_argument(
        "--schemes",
        nargs="+",
        default=["clirs", "clirs-r95", "netrs-tor", "netrs-ilp"],
        choices=SCHEMES,
    )
    compare_parser.add_argument("--repetitions", type=int, default=1)
    _add_common_run_options(compare_parser)
    _add_exec_options(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    figure_parser = sub.add_parser("figure", help="reproduce a paper figure")
    figure_parser.add_argument("figure", choices=sorted(FIGURES))
    figure_parser.add_argument("--repetitions", type=int, default=1)
    figure_parser.add_argument(
        "--bars", action="store_true", help="also render ASCII bar groups"
    )
    figure_parser.add_argument(
        "--markdown", action="store_true", help="emit a Markdown report instead"
    )
    _add_common_run_options(figure_parser)
    _add_exec_options(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    factors_parser = sub.add_parser(
        "factors", help="measure staleness/herding root causes"
    )
    factors_parser.add_argument(
        "--schemes",
        nargs="+",
        default=["clirs", "netrs-ilp"],
        choices=SCHEMES,
    )
    _add_common_run_options(factors_parser)
    factors_parser.set_defaults(func=_cmd_factors)

    trace_parser = sub.add_parser("trace", help="export a per-request CSV trace")
    trace_parser.add_argument("scheme", choices=SCHEMES)
    trace_parser.add_argument("--output", default="trace.csv")
    _add_common_run_options(trace_parser)
    trace_parser.set_defaults(func=_cmd_trace)

    sweep_parser = sub.add_parser(
        "sweep", help="sweep any ExperimentConfig field across schemes"
    )
    sweep_parser.add_argument("parameter", help="config field, e.g. utilization")
    sweep_parser.add_argument("values", nargs="+", help="values to sweep")
    sweep_parser.add_argument(
        "--schemes", nargs="+", default=["clirs", "netrs-ilp"], choices=SCHEMES
    )
    sweep_parser.add_argument("--repetitions", type=int, default=1)
    sweep_parser.add_argument("--bars", action="store_true")
    _add_common_run_options(sweep_parser)
    _add_exec_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    verify_parser = sub.add_parser(
        "verify", help="verify the paper's qualitative claims end to end"
    )
    _add_common_run_options(verify_parser)
    verify_parser.set_defaults(func=_cmd_verify)

    topo_parser = sub.add_parser("topology", help="fat-tree dimensions")
    topo_parser.add_argument("--k", type=int, default=16)
    topo_parser.set_defaults(func=_cmd_topology)

    plan_parser = sub.add_parser("plan", help="show an RSNode placement")
    plan_parser.add_argument(
        "--scheme",
        default="netrs-ilp",
        choices=[s for s in SCHEMES if s.startswith("netrs")],
    )
    _add_common_run_options(plan_parser)
    plan_parser.set_defaults(func=_cmd_plan)

    lint_parser = sub.add_parser(
        "lint",
        help="determinism sanitizer (AST rules DET*/SIM*/API*)",
        add_help=False,
    )
    lint_parser.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint_parser.set_defaults(func=_cmd_lint)

    contracts_parser = sub.add_parser(
        "contracts",
        help="contract sanitizer (mirror/kernel/digest drift, rules CON*)",
        add_help=False,
    )
    contracts_parser.add_argument("contract_args", nargs=argparse.REMAINDER)
    contracts_parser.set_defaults(func=_cmd_contracts)

    fidelity_parser = sub.add_parser(
        "validate-fidelity",
        help="gate the flow tier against the packet engine (docs/MESOSCALE.md)",
        add_help=False,
    )
    fidelity_parser.add_argument("fidelity_args", nargs=argparse.REMAINDER)
    fidelity_parser.set_defaults(func=_cmd_validate_fidelity)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    # ``lint`` owns its whole argument tail (argparse.REMAINDER refuses to
    # swallow a leading option like ``--stats``, so dispatch before parsing).
    if arguments and arguments[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(arguments[1:])
    # ``contracts`` likewise (it is ``lint --contracts-only`` under the hood).
    if arguments and arguments[0] == "contracts":
        from repro.lint.cli import main as lint_main

        return lint_main(["--contracts-only", *arguments[1:]])
    # ``validate-fidelity`` likewise owns its tail (see the lint note above).
    if arguments and arguments[0] == "validate-fidelity":
        from repro.mesoscale.validate import main as fidelity_main

        return fidelity_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
