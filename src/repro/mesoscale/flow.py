"""The flow-level engine: requests as scheduled completions, not packets.

The packet tier spends ~10 engine events per request walking every hop of
the fat-tree.  Under the paper's default link model those hops are *pure
constant delays*: every ECMP path between two hosts is latency-equal, so the
network's only contribution to a request's latency is a deterministic sum of
per-hop constants.  The flow tier exploits that: it keeps the **exact**
client, server, selector and workload logic of the packet tier (same code
shapes, same named RNG streams, same EWMA arithmetic) but replaces packet
forwarding with closed-form path delays, and runs request/completion
micro-events on a lean internal heap instead of the generic engine schedule.

The :class:`~repro.sim.core.Environment` is still the macro clock: fault
transitions and periodic completion-batch heartbeats run on it, so
``env.events_executed`` counts a handful of events per *run* rather than ten
per *request*.  Micro-events (arrival, service completion, response
delivery, timers) are counted separately in ``FlowEngine.micro_events``.

Fidelity: with ``link_bandwidth=None`` (the paper's configuration) the flow
tier accumulates per-hop delays with the same float additions the packet
engine performs hop by hop, consumes the same named RNG streams in the same
order, and mirrors queueing/EWMA/timer logic line for line -- CliRS runs are
bit-comparable to the packet tier up to tie-breaking noise (validated by
``netrs validate-fidelity``).  With ``link_bandwidth`` set, serialization
and access-link queueing are added analytically (M/D/1 mean waiting), which
is an approximation; see docs/MESOSCALE.md.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.events import (
    LinkDegrade,
    LinkDown,
    LinkUp,
    ServerDown,
    ServerUp,
)
from repro.faults.schedule import parse_fault_schedule
from repro.kvstore.client import CompletionTracker, RedundancyPolicy
from repro.kvstore.hashing import shared_ring
from repro.kvstore.workload import DemandWeights, ZipfSampler
from repro.mesoscale.geometry import FatTreeGeometry
from repro.mesoscale.support import ensure_flow_supported
from repro.network.packet import (
    _SIZE_MF,
    _SIZE_RGID,
    _SIZE_RID,
    _SIZE_RV,
    _SIZE_SM,
    _SIZE_SSL,
    _SIZE_UDP_HEADERS,
    ServerStatus,
)
from repro.selection.registry import create_selector
from repro.sim.core import Environment
from repro.sim.probes import LatencyRecorder
from repro.sim.rng import RngRegistry

#: Retry-backoff cap, kept equal to ``repro.kvstore.client._BACKOFF_CAP`` so
#: both tiers retransmit on identical schedules (docs/FAULTS.md).
_BACKOFF_CAP = 8.0

#: Completions between environment heartbeats (the flow tier's only steady
#: engine events): keeps ``env.now`` tracking the flow clock at negligible
#: event cost.
_FLUSH_EVERY = 4096

_MicroFn = Callable[..., None]


class _Fluctuation:
    """Replays the packet tier's :class:`BimodalFluctuation` as a timeline.

    The packet tier ticks a per-server timer every ``interval`` seconds and
    redraws the mean; each tick consumes one draw from the server's
    ``fluctuation.{name}`` stream.  Here the same draws are made lazily when
    service beginnings cross tick boundaries.  Boundaries accumulate with
    the same float additions as the packet tier's ``call_in`` chain, and
    begin-times are non-decreasing per server, so a single forward pointer
    reproduces the exact tick-aligned mean sequence.
    """

    __slots__ = ("base", "range_parameter", "interval", "_draws", "_current", "_next")

    def __init__(self, base: float, range_parameter: float, interval: float, draws) -> None:
        self.base = base
        self.range_parameter = range_parameter
        self.interval = interval
        self._draws = draws
        self._current = self._draw()  # construction-time draw, like the model
        self._next = 0.0 + interval

    def _draw(self) -> float:
        if self._draws.random() < 0.5:
            return self.base
        return self.base / self.range_parameter

    def mean_at(self, t: float) -> float:
        while t >= self._next:
            self._current = self._draw()
            self._next += self.interval
        return self._current


class _StableMean:
    """Constant-mean stand-in for ``StableService``."""

    __slots__ = ("_mean",)

    def __init__(self, mean: float) -> None:
        self._mean = mean

    def mean_at(self, t: float) -> float:
        return self._mean


class _Entry:
    """Flow-tier mirror of ``repro.kvstore.client._Outstanding`` (read path)."""

    __slots__ = (
        "key",
        "rgid",
        "replicas",
        "issued_at",
        "record",
        "primary_target",
        "done",
        "duplicates_sent",
        "attempts",
        "tried",
        "late_seen",
    )

    def __init__(self, key, rgid, replicas, issued_at, record, primary_target):
        self.key = key
        self.rgid = rgid
        self.replicas = replicas
        self.issued_at = issued_at
        self.record = record
        self.primary_target = primary_target
        self.done = False
        self.duplicates_sent = 0
        self.attempts = 0
        self.tried: Tuple[str, ...] = ()
        self.late_seen = 0


class _FlowServer:
    """Np-slot FIFO server, logic mirrored from ``KVServer`` line for line."""

    __slots__ = (
        "engine",
        "name",
        "parallelism",
        "_draws",
        "_alpha",
        "_mean",
        "_waiting",
        "_in_service",
        "_ewma_service_time",
        "completions",
        "arrivals",
        "max_queue_seen",
        "down",
        "_epoch",
        "dropped_requests",
        "lost_in_service",
    )

    def __init__(self, engine, name, *, parallelism, draws, alpha, mean_model):
        self.engine = engine
        self.name = name
        self.parallelism = parallelism
        self._draws = draws
        self._alpha = alpha
        self._mean = mean_model
        self._waiting: Deque[tuple] = deque()
        self._in_service = 0
        self._ewma_service_time = mean_model.mean_at(0.0)
        self.completions = 0
        self.arrivals = 0
        self.max_queue_seen = 0
        self.down = False
        self._epoch = 0
        self.dropped_requests = 0
        self.lost_in_service = 0

    @property
    def queue_size(self) -> int:
        return len(self._waiting) + self._in_service

    def fail(self) -> None:
        if self.down:
            return
        self.down = True
        self._epoch += 1
        self.lost_in_service += self._in_service + len(self._waiting)
        self._waiting.clear()
        self._in_service = 0

    def recover(self) -> None:
        self.down = False

    def handle_arrival(self, client, rid: int, rv: Optional[float]) -> None:
        if self.down:
            self.dropped_requests += 1
            return
        self.arrivals += 1
        if self.queue_size + 1 > self.max_queue_seen:
            self.max_queue_seen = self.queue_size + 1
        if self._in_service < self.parallelism:
            self._begin(client, rid, rv)
        else:
            self._waiting.append((client, rid, rv))

    def _begin(self, client, rid: int, rv: Optional[float]) -> None:
        engine = self.engine
        self._in_service += 1
        # Service drawn at *begin* time (same stream position as KVServer);
        # the calibration scale is 1.0 in normal runs and multiplies exactly.
        duration = self._draws.exponential(self._mean.mean_at(engine.now))
        duration *= engine.service_time_scale
        engine._post(duration, self._complete, (client, rid, rv, duration, self._epoch))

    def _complete(self, client, rid, rv, duration, epoch) -> None:
        if epoch != self._epoch:
            return  # scheduled before a crash: died with the server
        engine = self.engine
        self._in_service -= 1
        self.completions += 1
        self._ewma_service_time = (
            self._alpha * self._ewma_service_time + (1 - self._alpha) * duration
        )
        status = ServerStatus(
            queue_size=len(self._waiting) + self._in_service,
            service_rate=self.parallelism / self._ewma_service_time,
            timestamp=engine.now,
        )
        engine._send_response(self, client, rid, rv, status)
        if self._waiting:
            next_client, next_rid, next_rv = self._waiting.popleft()
            self._begin(next_client, next_rid, next_rv)


class _FlowClient:
    """Flow-tier mirror of ``KVClient`` (read path, timers as micro-events)."""

    __slots__ = (
        "engine",
        "name",
        "ring",
        "selector",
        "recorder",
        "netrs",
        "redundancy",
        "_draws",
        "_outstanding",
        "_history",
        "_cached_threshold",
        "_samples_since_refresh",
        "request_timeout",
        "max_retries",
        "requests_sent",
        "redundant_sent",
        "responses_received",
        "late_responses",
        "timeouts",
        "retries",
        "requests_lost",
        "duplicates_suppressed",
    )

    def __init__(
        self,
        engine,
        name,
        *,
        ring,
        selector,
        recorder,
        netrs,
        redundancy,
        draws,
        request_timeout,
        max_retries,
    ):
        self.engine = engine
        self.name = name
        self.ring = ring
        self.selector = selector
        self.recorder = recorder
        self.netrs = netrs
        self.redundancy = redundancy
        self._draws = draws
        self._outstanding: Dict[int, _Entry] = {}
        self._history = LatencyRecorder()
        self._cached_threshold: Optional[float] = None
        self._samples_since_refresh = 0
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.requests_sent = 0
        self.redundant_sent = 0
        self.responses_received = 0
        self.late_responses = 0
        self.timeouts = 0
        self.retries = 0
        self.requests_lost = 0
        self.duplicates_suppressed = 0

    # -- issuing -------------------------------------------------------
    def issue(self, key: int, record: bool = True) -> int:
        engine = self.engine
        rgid, replicas = self.ring.group_for_key(key)
        request_id = next(engine._ids)
        now = engine.now
        if self.netrs:
            # Backup draw kept for RNG parity with the packet tier even
            # though the flow tier never degrades to the backup.
            self.selector.select(replicas, now)
            primary_target = ""
        else:
            target = self.selector.select(replicas, now)
            self.selector.note_sent(target, now)
            primary_target = target
        entry = _Entry(key, rgid, replicas, now, record, primary_target)
        if primary_target:
            entry.tried = (primary_target,)
        self._outstanding[request_id] = entry
        self.requests_sent += 1
        if self.netrs:
            engine._send_via_operator(self, request_id, entry)
        else:
            engine._send_request(self, request_id, entry, primary_target)
        if self.redundancy is not None:
            engine._post(
                self._redundancy_threshold(), self._fire_redundant, (request_id,)
            )
        if self.request_timeout is not None:
            engine._post(self.request_timeout, self._on_timeout, (request_id,))
        return request_id

    def _redundancy_threshold(self) -> float:
        policy = self.redundancy
        if len(self._history) >= policy.min_samples:
            if self._cached_threshold is None or self._samples_since_refresh >= 25:
                self._cached_threshold = self._history.percentile(policy.percentile)
                self._samples_since_refresh = 0
            return self._cached_threshold
        mean = self._history.mean()
        if mean != mean:  # NaN: no history yet
            return policy.fallback_multiplier * 10e-3
        return policy.fallback_multiplier * mean

    def _fire_redundant(self, request_id: int) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None or entry.done:
            return
        others = [r for r in entry.replicas if r != entry.primary_target]
        if not others:
            return
        if self._draws is not None and len(others) > 1:
            target = others[int(self._draws.integers(len(others)))]
        else:
            target = others[0]
        self.selector.note_sent(target, self.engine.now)
        entry.duplicates_sent += 1
        self.redundant_sent += 1
        self.engine._send_request(self, request_id, entry, target)

    # -- timeouts & retries -------------------------------------------
    def _on_timeout(self, request_id: int) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None or entry.done:
            return
        engine = self.engine
        self.timeouts += 1
        if entry.attempts >= self.max_retries:
            entry.done = True
            self.requests_lost += 1
            del self._outstanding[request_id]
            engine._complete_request()
            return
        entry.attempts += 1
        self.retries += 1
        now = engine.now
        if self.netrs:
            self.selector.select(entry.replicas, now)  # fresh backup draw
            self.requests_sent += 1
            engine._send_via_operator(self, request_id, entry)
        else:
            untried = tuple(r for r in entry.replicas if r not in entry.tried)
            candidates = untried or entry.replicas
            if len(candidates) > 1:
                target = self.selector.select(candidates, now)
            else:
                target = candidates[0]
            entry.tried = entry.tried + (target,)
            entry.primary_target = target
            self.selector.note_sent(target, now)
            self.requests_sent += 1
            engine._send_request(self, request_id, entry, target)
        delay = self.request_timeout * min(2.0**entry.attempts, _BACKOFF_CAP)
        engine._post(delay, self._on_timeout, (request_id,))

    # -- responses -----------------------------------------------------
    def handle_response(self, request_id: int, server: str, status: ServerStatus) -> None:
        engine = self.engine
        self.responses_received += 1
        now = engine.now
        entry = self._outstanding.get(request_id)
        if entry is not None:
            self.selector.note_response(server, now - entry.issued_at, status, now)
        if entry is None or entry.done:
            self.late_responses += 1
            if entry is not None:
                if entry.attempts:
                    self.duplicates_suppressed += 1
                entry.late_seen += 1
                if entry.late_seen >= entry.duplicates_sent + entry.attempts:
                    self._outstanding.pop(request_id, None)
            return
        entry.done = True
        latency = now - entry.issued_at
        self._history.add(latency)
        self._samples_since_refresh += 1
        if entry.record:
            self.recorder.add(latency)
        if entry.duplicates_sent == 0 and entry.attempts == 0:
            del self._outstanding[request_id]
        engine._complete_request()


class _FlowAccelerator:
    """Deterministic-service FIFO accelerator, mirroring ``Accelerator``."""

    __slots__ = ("engine", "cores", "service_time", "link_delay", "_busy", "_queue", "processed", "busy_time", "max_queue_seen")

    def __init__(self, engine, *, cores, service_time, link_delay):
        self.engine = engine
        self.cores = cores
        self.service_time = service_time
        self.link_delay = link_delay
        self._busy = 0
        self._queue: Deque[tuple] = deque()
        self.processed = 0
        self.busy_time = 0.0
        self.max_queue_seen = 0

    def submit_at(self, when: float, work: _MicroFn, args: tuple, done: Optional[_MicroFn]) -> None:
        """Ship a job over the switch<->accelerator link at time ``when``."""
        self.engine._post_at(when + self.link_delay, self._enqueue, ((work, args, done),))

    def _enqueue(self, job: tuple) -> None:
        if self._busy < self.cores:
            self._busy += 1
            self.engine._post(self.service_time, self._complete, (job,))
        else:
            self._queue.append(job)
            if len(self._queue) > self.max_queue_seen:
                self.max_queue_seen = len(self._queue)

    def _complete(self, job: tuple) -> None:
        work, args, done = job
        self.processed += 1
        self.busy_time += self.service_time
        result = work(*args)
        if done is not None and result is not None:
            self.engine._post(self.link_delay, done, result)
        if self._queue:
            self.engine._post(self.service_time, self._complete, (self._queue.popleft(),))
        else:
            self._busy -= 1

    def utilization(self, now: float) -> float:
        if now <= 0:
            return 0.0
        return self.busy_time / (self.cores * now)


class _FlowOperator:
    """A NetRS RSNode at one client-fronting ToR (selector + accelerator)."""

    __slots__ = ("tor", "selector", "accelerator", "requests_handled", "responses_handled")

    def __init__(self, tor, selector, accelerator):
        self.tor = tor
        self.selector = selector
        self.accelerator = accelerator
        self.requests_handled = 0
        self.responses_handled = 0


class _FaultDriver:
    """Maps PR5 fault events onto flow-model state (docs/FAULTS.md)."""

    def __init__(self, engine, schedule) -> None:
        self.engine = engine
        self.faults_injected = 0
        self._down_since: Dict[str, float] = {}
        self._closed_downtime = 0.0
        self._resolved = [self._resolve(event) for event in schedule.events]
        self.has_link_events = any(
            isinstance(e, (LinkDown, LinkUp, LinkDegrade)) for e in self._resolved
        )

    def _resolve(self, event):
        if isinstance(event, (ServerDown, ServerUp)):
            return type(event)(event.at, self._resolve_node(event.server))
        if isinstance(event, (LinkDown, LinkUp)):
            return type(event)(
                event.at, self._resolve_node(event.a), self._resolve_node(event.b)
            )
        if isinstance(event, LinkDegrade):
            return LinkDegrade(
                event.at,
                self._resolve_node(event.a),
                self._resolve_node(event.b),
                event.factor,
            )
        raise ConfigurationError(
            f"{type(event).__name__} fault events are packet-tier only "
            "(fidelity='flow' has no RSNode failure path)"
        )

    def _resolve_node(self, ref: str) -> str:
        engine = self.engine
        ref = ref.strip()
        if ref.startswith("tor(") and ref.endswith(")"):
            return engine.geometry.tor_name(self._resolve_node(ref[4:-1]))
        for prefix, pool in (
            ("server#", engine.server_hosts),
            ("client#", engine.client_hosts),
        ):
            if ref.startswith(prefix):
                try:
                    index = int(ref[len(prefix):])
                except ValueError:
                    raise ConfigurationError(
                        f"bad fault target index in {ref!r}"
                    ) from None
                if not 0 <= index < len(pool):
                    raise ConfigurationError(
                        f"fault target {ref!r} out of range "
                        f"(have {len(pool)} such hosts)"
                    )
                return pool[index]
        if not engine.geometry.is_host(ref):
            raise ConfigurationError(
                f"fault target {ref!r} is not a host in the flow tier "
                "(use 'server#i', 'client#i', 'tor(...)' or a host name)"
            )
        return ref

    def arm(self) -> None:
        env = self.engine.env
        for event in self._resolved:
            env.call_at(event.at, self._apply, event)
        self.engine._env_times = sorted(event.at for event in self._resolved)

    def _apply(self, event) -> None:
        engine = self.engine
        self.faults_injected += 1
        now = engine.env.now
        if isinstance(event, ServerDown):
            server = engine.servers[event.server]
            if not server.down:
                server.fail()
                self._open_window(f"server:{event.server}", now)
        elif isinstance(event, ServerUp):
            server = engine.servers[event.server]
            if server.down:
                server.recover()
                self._close_window(f"server:{event.server}", now)
        elif isinstance(event, LinkDown):
            engine._fail_link(event.a, event.b)
            self._open_window(self._link_key(event.a, event.b), now)
        elif isinstance(event, LinkUp):
            engine._restore_link(event.a, event.b)
            self._close_window(self._link_key(event.a, event.b), now)
        else:  # LinkDegrade
            engine._degrade_link(event.a, event.b, event.factor)

    @staticmethod
    def _link_key(a: str, b: str) -> str:
        lo, hi = (a, b) if a <= b else (b, a)
        return f"link:{lo}/{hi}"

    def _open_window(self, key: str, now: float) -> None:
        self._down_since.setdefault(key, now)

    def _close_window(self, key: str, now: float) -> None:
        started = self._down_since.pop(key, None)
        if started is not None:
            self._closed_downtime += now - started

    def unavailability(self, now: float) -> float:
        open_windows = sum(now - started for started in self._down_since.values())
        return self._closed_downtime + open_windows


class FlowEngine:
    """One flow-level experiment: state, micro-event loop and accounting."""

    def __init__(
        self,
        config,
        *,
        env: Optional[Environment] = None,
        service_time_scale: float = 1.0,
    ) -> None:
        config.validate()
        ensure_flow_supported(config)
        if service_time_scale <= 0:
            raise ConfigurationError("service_time_scale must be positive")
        self.config = config
        self.env = env if env is not None else Environment(compaction=config.engine_compaction)
        self.service_time_scale = service_time_scale
        self.geometry = FatTreeGeometry(config.fat_tree_k)
        rng = RngRegistry(config.seed)
        self.rng = rng
        batch = config.rng_batch_size
        # Stream blocks sized to the run: a server's service stream draws
        # about total/n_servers values and a client's redundancy stream far
        # fewer, so on short runs a full default block would pre-draw (and
        # convert to Python floats) many times more values than are ever
        # served.  Served values are identical for any block size (the
        # BatchedStream contract) -- only the refill points move.
        if batch > 0:
            per_server = 8 * max(1, config.total_requests // max(1, config.n_servers))
            service_batch = max(64, min(batch, per_server))
            client_batch = min(batch, 256)
        else:
            service_batch = client_batch = 0

        # --- clock & micro-event machinery --------------------------------
        self._now = self.env.now
        self._heap: List[tuple] = []
        self._seq = 0
        self._ids = itertools.count(1)
        self.micro_events = 0
        self.heartbeats = 0
        self._since_flush = 0
        self._stopped = False
        self._env_times: List[float] = []

        # --- roles (identical to scenarios._assign_roles) ------------------
        host_names = self.geometry.hosts
        order = rng.stream("placement").permutation(len(host_names))
        shuffled = [host_names[i] for i in order]
        self.client_hosts = sorted(shuffled[: config.n_clients])
        self.server_hosts = sorted(
            shuffled[config.n_clients : config.n_clients + config.n_servers]
        )
        self.ring = shared_ring(
            self.server_hosts,
            replication_factor=config.replication_factor,
            virtual_nodes=config.virtual_nodes,
        )

        # --- link model ----------------------------------------------------
        h = config.host_link_latency
        s = config.switch_link_latency
        self._host_lat = h
        self._switch_lat = s
        self._full_path = {2: (h, h), 4: (h, s, s, h), 6: (h, s, s, s, s, h)}
        self._from_tor = {2: (h,), 4: (s, s, h), 6: (s, s, s, s, h)}
        self._to_tor = {2: (h,), 4: (h, s, s), 6: (h, s, s, s, s)}
        self._sizes = _wire_sizes(config)
        if config.link_bandwidth is not None:
            self._apply_bandwidth_model(config)
        self._dead_links: set = set()
        self._degraded: Dict[Tuple[str, str], float] = {}
        self._guarded = False  # hop-level fault checks only when link faults exist
        self.packets_dropped = 0
        self.transmissions = 0
        self.bytes_transferred = 0
        self.netrs_overhead_bytes = 0

        # --- servers -------------------------------------------------------
        self.servers: Dict[str, _FlowServer] = {}
        for name in self.server_hosts:
            if config.fluctuation_range > 1.0:
                mean_model = _Fluctuation(
                    config.mean_service_time,
                    config.fluctuation_range,
                    config.fluctuation_interval,
                    rng.batched(f"fluctuation.{name}", batch),
                )
            else:
                mean_model = _StableMean(config.mean_service_time)
            self.servers[name] = _FlowServer(
                self,
                name,
                parallelism=config.parallelism,
                draws=rng.batched(f"service.{name}", service_batch),
                alpha=config.ewma_alpha,
                mean_model=mean_model,
            )

        # --- clients -------------------------------------------------------
        self.recorder = LatencyRecorder()
        self.tracker = CompletionTracker(config.total_requests)
        self.tracker.when_done(self._stop)
        redundancy = (
            RedundancyPolicy(
                percentile=config.redundancy_percentile,
                min_samples=config.redundancy_min_samples,
            )
            if config.redundancy_enabled
            else None
        )
        self.clients: List[_FlowClient] = []
        for name in self.client_hosts:
            selector = create_selector(
                config.algorithm,
                concurrency_weight=config.n_clients,
                prior_service_rate=config.prior_service_rate(),
                rng=rng.stream(f"selector.client.{name}"),
            )
            self.clients.append(
                _FlowClient(
                    self,
                    name,
                    ring=self.ring,
                    selector=selector,
                    recorder=self.recorder,
                    netrs=config.netrs,
                    redundancy=redundancy,
                    draws=(
                        rng.batched(f"redundancy.{name}", client_batch)
                        if redundancy
                        else None
                    ),
                    request_timeout=config.request_timeout,
                    max_retries=config.max_retries,
                )
            )

        # --- NetRS operators (netrs-tor: one RSNode per client ToR) --------
        self.operators: Dict[str, _FlowOperator] = {}
        self._operator_of: Dict[str, _FlowOperator] = {}
        if config.netrs:
            tors = sorted({self.geometry.tor_name(name) for name in self.client_hosts})
            n_rsnodes = len(tors)
            for index, tor in enumerate(tors, start=1):
                selector = create_selector(
                    config.algorithm,
                    concurrency_weight=n_rsnodes,
                    prior_service_rate=config.prior_service_rate(),
                    rng=rng.stream(f"selector.operator.{index}"),
                )
                accelerator = _FlowAccelerator(
                    self,
                    cores=config.accelerator_cores,
                    service_time=config.accelerator_service_time,
                    link_delay=config.accelerator_link_delay,
                )
                self.operators[tor] = _FlowOperator(tor, selector, accelerator)
            for name in self.client_hosts:
                self._operator_of[name] = self.operators[self.geometry.tor_name(name)]

        # --- workload ------------------------------------------------------
        self.weights = DemandWeights(
            config.n_clients,
            skew=config.demand_skew,
            hot_fraction=config.hot_fraction,
            rng=rng.stream("workload.skew") if config.demand_skew is not None else None,
        )
        self._sampler = ZipfSampler(
            config.key_space, config.zipf_exponent, rng.batched("workload.keys", batch)
        )
        self._arrival_rng = rng.stream("workload.arrivals")
        self._rate = config.arrival_rate()
        self._total = config.total_requests
        self._warmup = config.warmup_requests()
        self.issued = 0
        self.per_client_counts = [0] * config.n_clients

        # --- faults --------------------------------------------------------
        self.faults: Optional[_FaultDriver] = None
        if config.fault_schedule:
            self.faults = _FaultDriver(self, parse_fault_schedule(config.fault_schedule))
            self.faults.arm()
            self._guarded = self.faults.has_link_events

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def _post(self, delay: float, fn: _MicroFn, args: tuple = ()) -> None:
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def _post_at(self, when: float, fn: _MicroFn, args: tuple = ()) -> None:
        self._seq += 1
        heappush(self._heap, (when, self._seq, fn, args))

    def _stop(self) -> None:
        self._stopped = True

    def _complete_request(self) -> None:
        self.tracker.complete()
        self._since_flush += 1
        if self._since_flush >= _FLUSH_EVERY:
            self._since_flush = 0
            env = self.env
            env.post_at(self._now, self._heartbeat)
            env.run(until=self._now)

    def _heartbeat(self) -> None:
        self.heartbeats += 1

    def run(self, until: Optional[float] = None) -> None:
        """Drive the experiment until completion (or the safety horizon)."""
        self._post(
            self._arrival_rng.exponential(1.0 / self._rate), self._arrival  # repro: noqa(PERF001) - mixed-family arrival stream, mirrors OpenLoopWorkload
        )
        heap = self._heap
        env = self.env
        env_times = self._env_times
        while heap and not self._stopped:
            entry = heappop(heap)
            when = entry[0]
            if until is not None and when > until:
                self._now = until
                break
            if env_times and env_times[0] <= when:
                # Fault transitions fire on the macro clock, strictly before
                # any micro-event at or after their timestamp (same ordering
                # as the packet tier's build-time-scheduled fault events).
                while env_times and env_times[0] <= when:
                    env.run(until=env_times.pop(0))
            self._now = when
            self.micro_events += 1
            entry[2](*entry[3])
            if heap and heap[0][0] == when:
                # Same-timestamp cluster: drain it in one flat pre-sorted
                # pass (the micro-tier reuse of the macro engine's batched
                # drain, see Environment._run_batch).  Successive heappops
                # at a fixed timestamp come out seq-ascending, entries
                # scheduled *by* the batch carry higher seqs and sort after
                # it, and there is no cancellation on the micro-heap, so
                # dispatch order is identical to the entry-at-a-time loop.
                batch = []
                while heap and heap[0][0] == when:
                    batch.append(heappop(heap))
                index = 0
                total = len(batch)
                while index < total:
                    if self._stopped:
                        # Push the undispatched tail back so a stop lands
                        # exactly as it would have entry-at-a-time.
                        for tail_entry in batch[index:]:
                            heappush(heap, tail_entry)
                        break
                    micro = batch[index]
                    index += 1
                    self.micro_events += 1
                    micro[2](*micro[3])
        if self._now > env.now:
            env.run(until=self._now)

    # ------------------------------------------------------------------
    # Workload (mirrors OpenLoopWorkload._arrival, read-only path)
    # ------------------------------------------------------------------
    def _arrival(self) -> None:
        index = self.weights.sample(self._arrival_rng)
        key = self._sampler.sample()
        record = self.issued >= self._warmup
        self.per_client_counts[index] += 1
        self.issued += 1
        self.clients[index].issue(key, record=record)
        if self.issued < self._total:
            self._post(
                self._arrival_rng.exponential(1.0 / self._rate), self._arrival  # repro: noqa(PERF001) - mixed-family arrival stream, mirrors OpenLoopWorkload
            )

    # ------------------------------------------------------------------
    # Link state (flow-model mapping of fabric faults)
    # ------------------------------------------------------------------
    def _check_access_link(self, a: str, b: str) -> Tuple[str, str]:
        host, other = (a, b) if self.geometry.is_host(a) else (b, a)
        if not self.geometry.is_host(host) or other != self.geometry.tor_name(host):
            raise ConfigurationError(
                f"no host-access link {a} <-> {b} in the flow model"
            )
        return host, other

    def _fail_link(self, a: str, b: str) -> None:
        self._check_access_link(a, b)
        self._dead_links.add((a, b))
        self._dead_links.add((b, a))

    def _restore_link(self, a: str, b: str) -> None:
        self._check_access_link(a, b)
        self._dead_links.discard((a, b))
        self._dead_links.discard((b, a))
        self._degraded.pop((a, b), None)
        self._degraded.pop((b, a), None)

    def _degrade_link(self, a: str, b: str, factor: float) -> None:
        self._check_access_link(a, b)
        self._degraded[(a, b)] = factor
        self._degraded[(b, a)] = factor

    # ------------------------------------------------------------------
    # Analytic delivery (the flow tier's replacement for packet forwarding)
    # ------------------------------------------------------------------
    def _account(self, hops: int, size: int, overhead: int) -> None:
        self.transmissions += hops
        self.bytes_transferred += size * hops
        self.netrs_overhead_bytes += overhead * hops

    def _send_along(
        self,
        hops: Tuple[float, ...],
        first_link: Optional[Tuple[str, str]],
        last_link: Optional[Tuple[str, str]],
        size: int,
        overhead: int,
        fn: _MicroFn,
        args: tuple,
    ) -> None:
        """Deliver along a fixed hop sequence, accumulating per-hop delays.

        Fast path: one float addition per hop (the exact additions the
        packet engine performs via per-hop ``post_in``), one micro-event at
        the far end.  Guarded path (only when the fault schedule contains
        link events): the first and last access-link crossings are checked
        against dead/degraded state at their actual transmit times.
        """
        t = self._now
        if not self._guarded:
            for d in hops:
                t += d
            self._account(len(hops), size, overhead)
            self._post_at(t, fn, args)
            return
        if first_link is not None and first_link in self._dead_links:
            self.packets_dropped += 1
            return
        first = hops[0]
        if first_link is not None:
            factor = self._degraded.get(first_link)
            if factor is not None:
                first *= factor
        t += first
        if last_link is None:
            for d in hops[1:]:
                t += d
            self._account(len(hops), size, overhead)
            self._post_at(t, fn, args)
            return
        for d in hops[1:-1]:
            t += d
        self._account(len(hops) - 1, size, overhead)
        self._post_at(
            t, self._final_hop, (last_link, hops[-1], size, overhead, fn, args)
        )

    def _final_hop(self, link, lat, size, overhead, fn, args) -> None:
        """Cross the destination access link at its real transmit time."""
        if link in self._dead_links:
            self.packets_dropped += 1
            return
        factor = self._degraded.get(link)
        if factor is not None:
            lat *= factor
        self._account(1, size, overhead)
        self._post_at(self._now + lat, fn, args)

    # -- CliRS paths ---------------------------------------------------
    def _send_request(self, client: _FlowClient, rid: int, entry: _Entry, target: str) -> None:
        hops = self._full_path[self.geometry.hop_count(client.name, target)]
        size, overhead = self._sizes["request"]
        first = last = None
        if self._guarded:
            first = (client.name, self.geometry.tor_name(client.name))
            last = (self.geometry.tor_name(target), target)
        self._send_along(
            hops, first, last, size, overhead,
            self.servers[target].handle_arrival, (client, rid, None),
        )

    def _send_response(self, server, client, rid, rv, status) -> None:
        if self.config.netrs:
            self._send_netrs_response(server, client, rid, rv, status)
            return
        hops = self._full_path[self.geometry.hop_count(server.name, client.name)]
        size, overhead = self._sizes["response"]
        first = last = None
        if self._guarded:
            first = (server.name, self.geometry.tor_name(server.name))
            last = (self.geometry.tor_name(client.name), client.name)
        self._send_along(
            hops, first, last, size, overhead,
            client.handle_response, (rid, server.name, status),
        )

    # -- NetRS paths (netrs-tor: RSNode at the client's ToR) -----------
    def _send_via_operator(self, client: _FlowClient, rid: int, entry: _Entry) -> None:
        op = self._operator_of[client.name]
        link = (client.name, self.geometry.tor_name(client.name))
        lat = self._host_lat
        if self._guarded:
            if link in self._dead_links:
                self.packets_dropped += 1
                return
            factor = self._degraded.get(link)
            if factor is not None:
                lat *= factor
        size, overhead = self._sizes["netrs_request"]
        self._account(1, size, overhead)
        # Host -> ToR, then ToR -> accelerator (submit adds the link delay).
        op.accelerator.submit_at(
            self._now + lat, self._select_work, (op, client, rid, entry), self._forward_selected
        )

    def _select_work(self, op: _FlowOperator, client, rid, entry):
        """Accelerator work: mirror of ``NetRSSelector.on_request``."""
        now = self._now
        candidates = self.ring.replicas(entry.rgid)
        server = op.selector.select(candidates, now)
        op.selector.note_sent(server, now)
        op.requests_handled += 1
        return (op, client, rid, server, now)  # retaining value = now

    def _forward_selected(self, op, client, rid, server, rv) -> None:
        """Rebuilt request leaves the ToR toward the selected server."""
        hops = self._from_tor[self.geometry.hop_count(client.name, server)]
        size, overhead = self._sizes["netrs_request"]
        last = (self.geometry.tor_name(server), server) if self._guarded else None
        self._send_along(
            hops, None, last, size, overhead,
            self.servers[server].handle_arrival, (client, rid, rv),
        )

    def _send_netrs_response(self, server, client, rid, rv, status) -> None:
        hops = self._to_tor[self.geometry.hop_count(server.name, client.name)]
        # The source marker is stamped at the server's ToR ingress, so the
        # first hop travels unmarked and every later hop carries 4 more
        # bytes -- mirror the packet tier's per-hop accounting exactly.
        size, overhead = self._sizes["netrs_response"]
        lat = hops[0]
        if self._guarded:
            link = (server.name, self.geometry.tor_name(server.name))
            if link in self._dead_links:
                self.packets_dropped += 1
                return
            factor = self._degraded.get(link)
            if factor is not None:
                lat *= factor
        self._account(1, size, overhead)
        t = self._now + lat
        for d in hops[1:]:
            t += d
        if len(hops) > 1:
            marked_size, marked_overhead = self._sizes["netrs_response_marked"]
            self._account(len(hops) - 1, marked_size, marked_overhead)
        self._post_at(t, self._tor_response, (client, rid, rv, server.name, status))

    def _tor_response(self, client, rid, rv, server_name, status) -> None:
        """Response reaches the client's ToR: clone to the RSNode, forward."""
        op = self._operator_of[client.name]
        op.accelerator.submit_at(
            self._now, self._absorb_response, (op, rv, server_name, status), None
        )
        link = (self.geometry.tor_name(client.name), client.name)
        lat = self._host_lat
        if self._guarded:
            if link in self._dead_links:
                self.packets_dropped += 1
                return
            factor = self._degraded.get(link)
            if factor is not None:
                lat *= factor
        size, overhead = self._sizes["netrs_response_marked"]
        self._account(1, size, overhead)
        self._post_at(lat + self._now, client.handle_response, (rid, server_name, status))

    def _absorb_response(self, op: _FlowOperator, rv, server_name, status):
        """Accelerator work: mirror of ``NetRSSelector.on_response``."""
        now = self._now
        op.selector.note_response(server_name, now - rv, status, now)
        op.responses_handled += 1
        return None

    # ------------------------------------------------------------------
    # Bandwidth model (analytic, see docs/MESOSCALE.md "Serialization")
    # ------------------------------------------------------------------
    def _apply_bandwidth_model(self, config) -> None:
        bandwidth = config.link_bandwidth
        req_size = self._sizes["request"][0]
        resp_size = self._sizes["response"][0]
        if config.netrs:
            req_size = self._sizes["netrs_request"][0]
            resp_size = self._sizes["netrs_response_marked"][0]
        s_req = req_size * 8.0 / bandwidth
        s_resp = resp_size * 8.0 / bandwidth
        lam_client = self._rate / config.n_clients
        lam_server = self._rate / config.n_servers
        wait_req = _md1_wait(lam_server, s_req)
        wait_resp = _md1_wait(lam_server, s_resp)
        wait_client_req = _md1_wait(lam_client, s_req)
        wait_client_resp = _md1_wait(lam_client, s_resp)

        def widen(hops, first_extra, mid_extra, last_extra):
            widened = [d + mid_extra for d in hops]
            widened[0] = hops[0] + first_extra
            widened[-1] = hops[-1] + last_extra
            return tuple(widened)

        for count in (2, 4, 6):
            self._full_path[count] = widen(
                self._full_path[count], s_req + wait_client_req, s_req, s_req + wait_req
            )
            self._from_tor[count] = widen(
                self._from_tor[count], s_req, s_req, s_req + wait_req
            )
            self._to_tor[count] = widen(
                self._to_tor[count], s_resp + wait_resp, s_resp, s_resp
            )
        # Response final hop onto the client access link.
        self._host_lat_response = self._host_lat + s_resp + wait_client_resp
        # CliRS responses reuse _full_path sized for requests; rebuild a
        # response-direction table instead.
        base = {2: (self._host_lat, self._host_lat),
                4: (self._host_lat, self._switch_lat, self._switch_lat, self._host_lat),
                6: (self._host_lat,) + (self._switch_lat,) * 4 + (self._host_lat,)}
        self._response_path = {
            count: widen(base[count], s_resp + wait_resp, s_resp, s_resp + wait_client_resp)
            for count in (2, 4, 6)
        }

    # ------------------------------------------------------------------
    # Result accounting helpers
    # ------------------------------------------------------------------
    def accelerator_max_utilization(self) -> float:
        if not self.operators:
            return 0.0
        now = self._now
        return max(op.accelerator.utilization(now) for op in self.operators.values())

    def selector_requests_handled(self) -> int:
        return sum(op.requests_handled for op in self.operators.values())


def _md1_wait(rate: float, service: float) -> float:
    """Mean M/D/1 waiting time ``rho * S / (2 (1 - rho))`` for one link."""
    rho = rate * service
    if rho >= 1.0:
        raise ConfigurationError(
            f"link_bandwidth saturates an access link (rho={rho:.2f}); "
            "the analytic flow model needs rho < 1"
        )
    return rho * service / (2.0 * (1.0 - rho))


def _wire_sizes(config) -> Dict[str, Tuple[int, int]]:
    """Per-packet (wire bytes, NetRS-overhead bytes) by packet kind.

    Mirrors the inlined sizing in ``Network.transmit``: CliRS requests are
    plain UDP; responses add the status segment and the value payload; NetRS
    packets add the fixed NetRS header plus RGID (and, for responses past
    the server's ToR, the source marker).
    """
    payload = 16  # empty-request placeholder payload, as in wire_size()
    value = 16 if config.value_size == 0 else config.value_size
    status = _SIZE_SSL + 12  # ServerStatus.wire_size() is fixed at 12 bytes
    netrs_fixed = _SIZE_RID + _SIZE_MF + _SIZE_RV
    return {
        "request": (_SIZE_UDP_HEADERS + payload, 0),
        "response": (_SIZE_UDP_HEADERS + status + value, 0),
        "netrs_request": (
            _SIZE_UDP_HEADERS + netrs_fixed + _SIZE_RGID + payload,
            netrs_fixed + _SIZE_RGID,
        ),
        # Responses drop the RGID segment (it is request-only wire data).
        "netrs_response": (
            _SIZE_UDP_HEADERS + netrs_fixed + status + value,
            netrs_fixed,
        ),
        "netrs_response_marked": (
            _SIZE_UDP_HEADERS + netrs_fixed + _SIZE_SM + status + value,
            netrs_fixed + _SIZE_SM,
        ),
    }
