"""Drive a :class:`FlowEngine` run and collect an :class:`ExperimentResult`.

This is the flow-tier twin of :func:`repro.experiments.runner.run_experiment`:
same safety horizon, same stall/NaN guards, same result schema -- so sweeps,
ledgers and figures consume flow results with zero changes.  The only
additions are ``micro_events`` (the flow tier's internal event count, kept
separate from ``events_executed`` so the macro-event savings stay honest)
and the ``service_time_scale`` calibration knob used by the validation
harness to prove its gate can fail.
"""

from __future__ import annotations

import math
import os
import time

from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.mesoscale.flow import FlowEngine
from repro.sim.backend import resolve as resolve_backend


def run_flow_experiment(
    config: ExperimentConfig,
    *,
    service_time_scale: float = 1.0,
    keep_engine: bool = False,
) -> ExperimentResult:
    """Run ``config`` on the flow tier; returns the standard result schema.

    ``service_time_scale`` multiplies every drawn service time (1.0 in
    normal runs); the validation harness uses it to build deliberately
    mis-calibrated fixtures.  With ``keep_engine`` the live engine is
    attached as ``result.engine`` for inspection.

    Dispatch: ``config.shards > 1`` fans the run out as independent
    ``repro.exec`` jobs and merges them (repro.mesoscale.shard);
    ``config.vector_batch > 0`` selects the struct-of-arrays fast path
    (repro.mesoscale.vector), bit-identical to the scalar engine.  The
    ``REPRO_VECTOR_FORCE`` environment variable (a block length) routes
    scalar-configured runs through the vector engine too -- safe because
    the two are bit-identical; the CI vector leg uses it to run the whole
    fast suite on the SoA path.
    """
    if config.shards > 1:
        # Imported lazily: shard fan-out builds on this function.
        from repro.mesoscale.shard import run_sharded_flow_experiment

        return run_sharded_flow_experiment(
            config, service_time_scale=service_time_scale
        )
    # Resolving enforces the explicit-backend availability contract
    # (engine_backend="numba" without numba must fail loudly here too, not
    # silently differ from the packet tier).
    resolve_backend(config.engine_backend)
    vector_batch = config.vector_batch
    if vector_batch == 0:
        forced = os.environ.get("REPRO_VECTOR_FORCE", "")
        if forced:
            vector_batch = int(forced)
    if vector_batch > 0:
        # Imported lazily so scalar runs never pay the numpy-kernels import.
        from repro.mesoscale.vector import VectorFlowEngine

        engine: FlowEngine = VectorFlowEngine(
            config,
            service_time_scale=service_time_scale,
            vector_batch=vector_batch,
        )
    else:
        engine = FlowEngine(config, service_time_scale=service_time_scale)
    expected_duration = config.total_requests / config.arrival_rate()
    safety_horizon = engine.env.now + expected_duration * 5 + 10.0

    started_wall = time.perf_counter()  # repro: noqa(DET002) - real wall time, reported only
    engine.run(until=safety_horizon)
    wall_time = time.perf_counter() - started_wall  # repro: noqa(DET002) - reported only

    tracker = engine.tracker
    if tracker.completed < tracker.expected:
        raise ReproError(
            f"flow run stalled: {tracker.completed}/{tracker.expected} "
            f"requests completed within the safety horizon "
            f"({safety_horizon:.1f}s sim)"
        )
    if len(engine.recorder) == 0:
        raise ReproError("no latency samples were recorded")
    if math.isnan(engine.recorder.mean()):
        raise ReproError("latency statistics are NaN")

    result = ExperimentResult(
        config=config,
        latency=engine.recorder,
        sim_duration=engine.env.now,
        wall_time=wall_time,
        completed_requests=tracker.completed,
        transmissions=engine.transmissions,
        bytes_transferred=engine.bytes_transferred,
        netrs_overhead_bytes=engine.netrs_overhead_bytes,
        events_executed=engine.env.events_executed,
        micro_events=engine.micro_events,
        redundant_requests=sum(c.redundant_sent for c in engine.clients),
        timeouts=sum(c.timeouts for c in engine.clients),
        retries=sum(c.retries for c in engine.clients),
        requests_lost=sum(c.requests_lost for c in engine.clients),
        duplicates_suppressed=sum(
            c.duplicates_suppressed for c in engine.clients
        ),
        packets_dropped=engine.packets_dropped,
        server_dropped_requests=sum(
            s.dropped_requests for s in engine.servers.values()
        ),
    )
    if engine.faults is not None:
        result.faults_injected = engine.faults.faults_injected
        result.unavailability = engine.faults.unavailability(engine.env.now)
    if engine.operators:
        result.rsnode_count = len(engine.operators)
        result.plan_description = (
            f"FLOW[rsnodes={len(engine.operators)} granularity=rack]"
        )
        result.accelerator_max_utilization = engine.accelerator_max_utilization()
        result.selector_requests_handled = engine.selector_requests_handled()
    if keep_engine:
        result.engine = engine  # type: ignore[attr-defined]
    return result
