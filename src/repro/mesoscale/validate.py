"""Packet-vs-flow validation harness behind ``netrs validate-fidelity``.

The flow tier is only useful if it provably tracks the packet engine on the
paper's configurations.  This module runs the same config under both tiers
and gates on latency-distribution agreement:

* **per-percentile relative error** on the paper's four metrics (mean, p95,
  p99, p999), and
* **Kolmogorov-Smirnov distance** between the recorded latency samples.

Both thresholds are committed in :data:`DEFAULT_TOLERANCES`.  For the
CliRS schemes the flow tier replays the exact RNG streams and float
arithmetic of the packet engine, so the observed errors are ~0; the
tolerances are deliberately wider (5 % / 0.05 KS) to stay meaningful if
either tier's internals drift.  The harness proves it *can* fail via the
``service_time_scale`` knob: a mis-calibrated flow run must breach the gate
(tested in ``tests/mesoscale/test_validate.py``).

Scenario registry: ``fig4-clirs-r95`` is one cell of the paper's Figure 4
sweep (n_clients=32 on the small profile); ``faults-clirs`` replays a
crash-and-recover schedule with timeouts, exercising the PR5 fault mapping
in both tiers.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.mesoscale.runner import run_flow_experiment

#: The paper's four latency metrics, as produced by ``result.summary()``.
METRICS = ("mean", "p95", "p99", "p999")


@dataclass(frozen=True)
class Tolerances:
    """Committed agreement thresholds for the fidelity gate."""

    #: Max |flow - packet| / packet per summary metric.
    rel_err: Dict[str, float] = field(
        default_factory=lambda: {
            "mean": 0.05,
            "p95": 0.05,
            "p99": 0.08,
            "p999": 0.12,
        }
    )
    #: Max two-sample Kolmogorov-Smirnov distance between latency samples.
    ks_distance: float = 0.05


DEFAULT_TOLERANCES = Tolerances()


def _scenario_configs() -> Dict[str, ExperimentConfig]:
    """Build the registry lazily so imports stay validation-free."""
    return {
        # One Figure-4 cell (small profile, n_clients=32) on the redundant
        # scheme: exercises selection, redundancy timers and the R95 cache.
        "fig4-clirs-r95": ExperimentConfig.small(
            scheme="clirs-r95", seed=11
        ).replace(n_clients=32, total_requests=6_000),
        # Crash-and-recover with timeouts: exercises the fault mapping
        # (queue loss, drops, retries, unavailability windows) in both tiers.
        "faults-clirs": ExperimentConfig.small(scheme="clirs", seed=7).replace(
            total_requests=6_000,
            fault_schedule=(
                "server-down@0.05:server#0;server-up@0.25:server#0;"
                "server-down@0.10:server#3;server-up@0.30:server#3"
            ),
            request_timeout=40e-3,
            max_retries=3,
        ),
    }


#: Names of the committed validation scenarios.
VALIDATION_SCENARIOS = ("fig4-clirs-r95", "faults-clirs")


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup |F_a - F_b|``."""
    xs = np.sort(np.asarray(a, dtype=float))
    ys = np.sort(np.asarray(b, dtype=float))
    if len(xs) == 0 or len(ys) == 0:
        return 1.0
    grid = np.concatenate([xs, ys])
    cdf_a = np.searchsorted(xs, grid, side="right") / len(xs)
    cdf_b = np.searchsorted(ys, grid, side="right") / len(ys)
    return float(np.max(np.abs(cdf_a - cdf_b)))


@dataclass
class FidelityReport:
    """Agreement measurements for one scenario under both tiers."""

    scenario: str
    packet_summary: Dict[str, float]
    flow_summary: Dict[str, float]
    rel_err: Dict[str, float]
    ks: float
    packet_events: int
    flow_events: int
    flow_micro_events: int
    completed_requests: int
    passed: bool
    breaches: List[str]

    def event_ratio(self) -> float:
        """Packet engine events per flow *engine* event (the macro win)."""
        return self.packet_events / max(1, self.flow_events)

    def format(self) -> str:
        """Human-readable gate report, one block per scenario."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"[{verdict}] {self.scenario} ({self.completed_requests} requests)"]
        for metric in METRICS:
            lines.append(
                f"  {metric:>5}: packet={self.packet_summary[metric]:8.3f}ms "
                f"flow={self.flow_summary[metric]:8.3f}ms "
                f"rel_err={self.rel_err[metric]:.2e}"
            )
        lines.append(f"  KS distance: {self.ks:.2e}")
        lines.append(
            f"  engine events: packet={self.packet_events} "
            f"flow={self.flow_events} (micro={self.flow_micro_events}) "
            f"ratio={self.event_ratio():.1f}x"
        )
        for breach in self.breaches:
            lines.append(f"  BREACH: {breach}")
        return "\n".join(lines)


def compare_tiers(
    name: str,
    config: ExperimentConfig,
    *,
    tolerances: Tolerances = DEFAULT_TOLERANCES,
    service_time_scale: float = 1.0,
) -> FidelityReport:
    """Run ``config`` under both tiers and measure their agreement.

    ``service_time_scale`` is forwarded to the flow tier only -- setting it
    away from 1.0 deliberately mis-calibrates the flow model, which the
    gate must catch.
    """
    # Imported here: the packet runner imports this module's package lazily
    # for the fidelity dispatch, so a module-level import would be circular.
    from repro.experiments.runner import run_experiment

    packet = run_experiment(config.replace(fidelity="packet"))
    flow = run_flow_experiment(config, service_time_scale=service_time_scale)

    packet_summary = packet.summary()
    flow_summary = flow.summary()
    rel_err = {
        metric: abs(flow_summary[metric] - packet_summary[metric])
        / abs(packet_summary[metric])
        for metric in METRICS
    }
    ks = ks_distance(packet.latency.samples, flow.latency.samples)

    breaches: List[str] = []
    for metric in METRICS:
        budget = tolerances.rel_err[metric]
        if rel_err[metric] > budget:
            breaches.append(
                f"{metric} relative error {rel_err[metric]:.4f} "
                f"> tolerance {budget}"
            )
    if ks > tolerances.ks_distance:
        breaches.append(
            f"KS distance {ks:.4f} > tolerance {tolerances.ks_distance}"
        )
    return FidelityReport(
        scenario=name,
        packet_summary=packet_summary,
        flow_summary=flow_summary,
        rel_err=rel_err,
        ks=ks,
        packet_events=packet.events_executed,
        flow_events=flow.events_executed,
        flow_micro_events=flow.micro_events,
        completed_requests=packet.completed_requests,
        passed=not breaches,
        breaches=breaches,
    )


def validate_fidelity(
    scenarios: Sequence[str] = VALIDATION_SCENARIOS,
    *,
    tolerances: Tolerances = DEFAULT_TOLERANCES,
    service_time_scale: float = 1.0,
) -> List[FidelityReport]:
    """Run the fidelity gate over the named scenarios."""
    registry = _scenario_configs()
    reports = []
    for name in scenarios:
        config = registry.get(name)
        if config is None:
            raise ConfigurationError(
                f"unknown validation scenario {name!r}; "
                f"available: {', '.join(sorted(registry))}"
            )
        reports.append(
            compare_tiers(
                name,
                config,
                tolerances=tolerances,
                service_time_scale=service_time_scale,
            )
        )
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also mounted as ``netrs validate-fidelity``)."""
    parser = argparse.ArgumentParser(
        prog="validate-fidelity",
        description="Gate flow-tier latency distributions against the packet engine.",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: all committed scenarios)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument(
        "--service-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="mis-calibration knob: multiply flow-tier service times "
        "(default 1.0; used to prove the gate fails)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(_scenario_configs()):
            print(name)
        return 0
    names = tuple(args.scenario) if args.scenario else VALIDATION_SCENARIOS
    reports = validate_fidelity(names, service_time_scale=args.service_scale)
    for report in reports:
        print(report.format())
    failed = [r for r in reports if not r.passed]
    if failed:
        print(
            f"fidelity gate FAILED on {len(failed)}/{len(reports)} scenarios",
            file=sys.stderr,
        )
        return 1
    print(f"fidelity gate passed on {len(reports)} scenarios")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
