"""Struct-of-arrays whole-request fast path for the flow tier.

:class:`VectorFlowEngine` re-runs the exact experiment of
:class:`~repro.mesoscale.flow.FlowEngine` -- same named RNG streams in the
same order, same float-addition order, same tie-breaking -- but precomputes
whole *blocks* of requests ahead of the drain loop instead of materialising
one ``_Entry`` object, one arrival heap event and one hop loop per request:

* the open-loop arrival process (gap chain, per-request client index, key)
  is rolled forward ``vector_batch`` requests at a time into parallel
  struct-of-arrays blocks;
* key -> replica-group resolution and the per-(request, replica) locality
  class run over the block in one pass (``hop_class_batch`` kernel);
* the deterministic request delivery time for each locality class is one
  vectorized chained-add over the block (``path_chain`` kernel) -- the same
  IEEE additions the scalar ``_send_along`` performs hop by hop, evaluated
  element-wise, so the timestamps are bit-equal;
* arrivals never touch the heap: a cursor over the block merges with the
  micro-heap on the scalar engine's exact ``(time, seq)`` order, with the
  sequence numbers the scalar tier *would* have assigned simulated at the
  same points.

Per-request mutable state lives in flat rid-indexed arrays (issue time,
primary target, replica tuple, done/alive bytemaps) with the rare fields
(duplicate counts, retry attempts, tried sets) in sparse dicts, replacing
the scalar tier's per-request ``_Entry`` + ``_outstanding`` dict.  Client
and server objects, selectors, accelerators and the fault driver are reused
unchanged from the scalar engine, which remains the line-for-line oracle:
the byte-identity suites in ``tests/mesoscale/test_vector.py`` hold every
sample and counter of this path equal to the scalar tier's, and the CON001
contracts in ``repro.mesoscale.contracts`` pin the endpoint mirrors
statically.

Kernels resolve through :mod:`repro.sim.backend` (``KERNEL_MIRRORS``):
the numpy reference implementations below are the oracle; numba and Cython
twins live in ``repro.sim._kernels_numba`` / ``_kernels_cython``.

Fault schedules with *link* events force every send back through the
scalar guarded path (per-hop dead/degrade checks at transmit time), so the
delivery-time tables are only consulted on fault-free links -- identical
results either way, just less batching.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from math import exp, log1p
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mesoscale.flow import (
    _BACKOFF_CAP,
    _FLUSH_EVERY,
    FlowEngine,
    _FlowServer,
    _StableMean,
)
from repro.selection.c3 import C3Selector
from repro.sim.backend import resolve

_INF = float("inf")


# ---------------------------------------------------------------------------
# SoA kernels (pure-python reference; see KERNEL_MIRRORS for the twins)
# ---------------------------------------------------------------------------
def path_chain(times: np.ndarray, hops: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Chained per-hop delay accumulation over a block of start times.

    ``out[i] = times[i] + hops[0] + hops[1] + ...`` with one element-wise
    addition per hop -- the same float-addition order the scalar
    ``FlowEngine._send_along`` fast path performs per request, so delivery
    timestamps are bit-equal to the scalar chain.  Mirrors:
    ``_kernels_numba.path_chain`` / ``_kernels_cython.path_chain``.
    """
    out[:] = times
    for delay in hops:
        out += delay
    return out


def hop_class_batch(
    client_rack: np.ndarray,
    client_pod: np.ndarray,
    replica_rack: np.ndarray,
    replica_pod: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Locality class (0=same rack, 1=same pod, 2=cross-pod) per (request, replica).

    Integer compares only, so every backend is trivially exact.  Class c
    maps to hop count 2c+2 and indexes the ``path_chain`` delivery tables.
    Mirrors: ``_kernels_numba.hop_class_batch`` /
    ``_kernels_cython.hop_class_batch``.
    """
    same_rack = replica_rack == client_rack[:, None]
    same_pod = replica_pod == client_pod[:, None]
    out[...] = np.where(same_rack, 0, np.where(same_pod, 1, 2))
    return out


class _VFlowServer(_FlowServer):
    """Fast-mode twin of ``_FlowServer`` (same arithmetic, fewer layers).

    Swapped in (state-copied) only when the engine runs unguarded clirs
    with plain C3 selectors: ``_begin`` pushes the completion straight onto
    the micro-heap and ``_complete`` delivers the response through a
    memoized per-(server, client) hop plan -- the identical chained float
    additions ``_send_along`` performs -- handing ``(queue_size,
    service_rate)`` to the engine's inlined feedback handler instead of
    allocating a ``ServerStatus`` per completion.  ``fail``/``recover``
    and the queue/EWMA arithmetic are inherited/copied line for line, so
    server-fault schedules behave identically.
    """

    __slots__ = ("_resp_plan", "_complete_cb", "_fastdraw", "_mean_const")

    def __init__(self, base: _FlowServer) -> None:
        for name in _FlowServer.__slots__:
            setattr(self, name, getattr(base, name))
        # client name -> (hop delays, hop count, bytes, overhead bytes)
        self._resp_plan: Dict[str, tuple] = {}
        self._complete_cb = self._complete  # bound once, pushed per service
        # Stable-service means never change; folding the constant out lets
        # the drain loop skip the mean_at call (fluctuating servers keep a
        # None here and take the tick-pointer path).
        mean_model = self._mean
        self._mean_const = (
            mean_model._mean if type(mean_model) is _StableMean else None
        )
        # Service draws are the stream's only family, so the family lock the
        # first scalar draw would take is taken up front and _begin reads the
        # pre-drawn block directly (same values, same refill points).
        self._fastdraw = self._draws.block_size > 0
        if self._fastdraw:
            self._draws._lock("exponential")

    def handle_arrival(self, client, rid: int, rv) -> None:
        if self.down:
            self.dropped_requests += 1
            return
        self.arrivals += 1
        queued = len(self._waiting) + self._in_service
        if queued + 1 > self.max_queue_seen:
            self.max_queue_seen = queued + 1
        if self._in_service < self.parallelism:
            self._begin(client, rid, rv)
        else:
            self._waiting.append((client, rid, rv))

    def _begin(self, client, rid: int, rv) -> None:
        engine = self.engine
        self._in_service += 1
        mean = self._mean.mean_at(engine._now)
        if self._fastdraw:
            draws = self._draws
            pos = draws._pos
            block = draws._block
            if pos >= len(block):
                draws._refill()
                block = draws._block
                pos = 0
            draws._pos = pos + 1
            # exponential(mean) is mean * standard_exponential(); IEEE
            # multiplication commutes bitwise, so this is the scalar value.
            duration = block[pos] * mean * engine.service_time_scale
        else:
            duration = self._draws.exponential(mean)
            duration *= engine.service_time_scale
        engine._seq += 1
        heappush(
            engine._heap,
            (
                engine._now + duration,
                engine._seq,
                self._complete_cb,
                (client, rid, rv, duration, self._epoch),
            ),
        )

    def _complete(self, client, rid, rv, duration, epoch) -> None:
        if epoch != self._epoch:
            return  # scheduled before a crash: died with the server
        engine = self.engine
        self._in_service -= 1
        self.completions += 1
        alpha = self._alpha
        self._ewma_service_time = (
            alpha * self._ewma_service_time + (1 - alpha) * duration
        )
        queue_size = len(self._waiting) + self._in_service
        service_rate = self.parallelism / self._ewma_service_time
        plan = self._resp_plan.get(client.name)
        if plan is None:
            plan = engine._response_plan(self.name, client.name)
            self._resp_plan[client.name] = plan
        hops, count, nbytes, noverhead = plan
        t = engine._now
        for delay in hops:
            t += delay
        engine.transmissions += count
        engine.bytes_transferred += nbytes
        engine.netrs_overhead_bytes += noverhead
        engine._seq += 1
        # Flat event shape (no inner args tuple): the fast drain's response
        # branch consumes ``_fast_response_cb`` events by position.  Heap
        # ordering never compares past the unique seq, so flat and
        # ``(t, seq, cb, args)`` events coexist safely.
        heappush(
            engine._heap,
            (t, engine._seq, engine._fast_response_cb,
             client, rid, self.name, queue_size, service_rate),
        )
        if self._waiting:
            next_client, next_rid, next_rv = self._waiting.popleft()
            self._begin(next_client, next_rid, next_rv)


class VectorFlowEngine(FlowEngine):
    """Flow engine draining precomputed struct-of-arrays request blocks.

    Construction is inherited wholesale -- the stream creation order, role
    placement, ring, servers, clients, operators and fault driver are the
    scalar engine's own.  Only the request lifecycle is replaced: arrivals
    come from a block cursor, and the client endpoint logic runs as
    engine-level methods over flat arrays (``_issue_next``,
    ``_v_handle_response``, ``_v_fire_redundant``, ``_v_on_timeout``).
    """

    def __init__(
        self,
        config,
        *,
        env=None,
        service_time_scale: float = 1.0,
        vector_batch: Optional[int] = None,
    ) -> None:
        super().__init__(config, env=env, service_time_scale=service_time_scale)
        backend = resolve(config.engine_backend)
        kernels = backend.kernels
        self._k_path_chain = kernels.path_chain if kernels is not None else path_chain
        self._k_hop_class = (
            kernels.hop_class_batch if kernels is not None else hop_class_batch
        )
        if vector_batch is None:
            vector_batch = config.vector_batch
        self._chunk = max(1, vector_batch)
        self._is_netrs = bool(config.netrs)
        self._rate_inv = 1.0 / self._rate
        self._timeout = config.request_timeout
        self._redundancy = self.clients[0].redundancy if self.clients else None
        self._req_size, self._req_overhead = self._sizes["request"]
        # hop class -> response-delivery plan (filled lazily): plans depend
        # only on the locality class of the pair, not on its identity.
        self._resp_by_class: Dict[int, tuple] = {}
        self._cls_hops = (2, 4, 6)  # hop count per locality class
        # Per-hop delay vectors per class, in scalar chain order (these pick
        # up the bandwidth-model widening automatically).
        self._hop_arrays = tuple(
            np.asarray(self._full_path[count], dtype=np.float64)
            for count in (2, 4, 6)
        )
        geometry = self.geometry
        racks_per_pod = geometry.racks_per_pod
        self._client_rack_arr = np.asarray(
            [geometry.rack_index(name) for name in self.client_hosts], dtype=np.int64
        )
        self._client_pod_arr = self._client_rack_arr // racks_per_pod
        self._rg_codes: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        # Fast mode: unguarded clirs with plain C3 selectors (the common
        # sweep configuration).  The server objects are swapped for their
        # state-copied _VFlowServer twins and the C3 feedback loops run
        # inlined in _issue_next/_v_fast_response; anything else (netrs,
        # link-fault guards, other selector families, rate control, packet
        # kernel mirrors) stays on the scalar endpoints.
        selector0 = self.clients[0].selector if self.clients else None
        self._fast = (
            not self._is_netrs
            and not self._guarded
            and isinstance(selector0, C3Selector)
            and selector0._rate_limiter_factory is None
            and selector0._mirror is None
            # The drain loop hoists the scoring constants once, so every
            # client's selector must share them (always true for selectors
            # built from one config; anything exotic stays on the scalar
            # endpoints).
            and all(
                c.selector.prior_service_rate == selector0.prior_service_rate
                and c.selector.concurrency_weight == selector0.concurrency_weight
                and c.selector.cubic_exponent == selector0.cubic_exponent
                and c.selector.ewma_alpha == selector0.ewma_alpha
                for c in self.clients
            )
        )
        if self._fast:
            self._sel_prior = selector0.prior_service_rate
            self._sel_weight = selector0.concurrency_weight
            self._sel_exponent = selector0.cubic_exponent
            self._sel_alpha = selector0.ewma_alpha
            self.servers = {
                name: _VFlowServer(server) for name, server in self.servers.items()
            }
        # (client, rgid) -> ((server, track), ...) for the inlined select
        # loop: replica groups are frozen with the ring and C3 tracks are
        # created once and never dropped, so the pairing is stable.  Tracks
        # are created on the first select touching them, exactly when the
        # scalar scoring loop would.
        self._track_cache: List[Dict[int, tuple]] = [
            {} for _ in self.clients
        ]
        # The key stream only ever draws uniforms, so the family lock its
        # first scalar draw would take is taken up front and _load_chunk
        # reads the pre-drawn block directly (same values, same refills).
        zipf_draws = self._sampler._draws
        self._zipf_fast = getattr(zipf_draws, "block_size", 0) > 0
        if self._zipf_fast:
            zipf_draws._lock("uniform")
        self._arrival_of = {
            name: server.handle_arrival for name, server in self.servers.items()
        }
        # -- dense per-request state (rid-indexed; rids are 1..total) -------
        total = self._total
        self._issued_at: List[float] = [0.0] * (total + 1)
        self._primary: List[str] = [""] * (total + 1)
        self._replicas_of: List[Tuple[str, ...]] = [()] * (total + 1)
        self._rgid_of: List[int] = [0] * (total + 1) if self._is_netrs else []
        self._done = bytearray(total + 1)
        self._alive = bytearray(total + 1)
        # -- sparse per-request state (zero for the vast majority) ----------
        self._dup_sent: Dict[int, int] = {}
        self._attempts: Dict[int, int] = {}
        self._late_seen: Dict[int, int] = {}
        self._tried: Dict[int, Tuple[str, ...]] = {}
        # -- redundancy-policy constants (inlined _redundancy_threshold) ----
        policy = self._redundancy
        if policy is not None:
            self._red_min = policy.min_samples
            self._red_pct = policy.percentile
            self._red_mult = policy.fallback_multiplier
            # Same single multiplication _redundancy_threshold performs on
            # its no-history branch, done once.
            self._red_default = policy.fallback_multiplier * 10e-3
        # -- bound handler caches (one bound method per push otherwise) -----
        self._issue_next_cb = self._issue_next
        self._fire_redundant_cb = self._v_fire_redundant
        self._timeout_cb = self._v_on_timeout
        self._fast_response_cb = self._v_fast_response
        self._deliver_cb = self._v_deliver
        self._v_complete_cb = self._v_complete
        self._server_by_name = dict(self.servers)
        # -- arrival cursor + current SoA block -----------------------------
        self._cursor = 0
        self._b_lo = 0
        self._b_hi = 0
        self._pending_time = 0.0
        self._b_times: List[float] = []
        self._b_clients: List[int] = []
        self._b_replicas: List[Tuple[str, ...]] = []
        self._b_rgids: List[int] = []
        self._b_cls: Optional[List[List[int]]] = None
        self._b_path: List[List[float]] = []

    # ------------------------------------------------------------------
    # SoA prologue: roll the workload forward one block
    # ------------------------------------------------------------------
    def _load_chunk(self) -> None:
        """Precompute the next ``vector_batch`` requests as parallel arrays.

        Draw order per request mirrors ``FlowEngine._arrival`` exactly:
        a uniform client pick then (unless last) an exponential gap on the
        shared arrival stream, with the key on its own batched stream --
        deferring whole blocks never reorders draws *within* a stream, and
        the streams are independent by construction (docs/SIMULATOR.md).
        """
        lo = self._b_hi
        hi = min(lo + self._chunk, self._total)
        n = hi - lo
        rng = self._arrival_rng
        sample = self.weights.sample
        sampler = self._sampler
        sample_key = sampler.sample
        ring = self.ring
        key_cache = ring._key_cache
        group_for_key = ring.group_for_key
        rate_inv = self._rate_inv
        last = self._total - 1
        t = self._pending_time
        times: List[float] = [0.0] * n
        clients: List[int] = [0] * n
        rgids: List[int] = [0] * n
        replicas_list: List[Tuple[str, ...]] = [()] * n
        # The rejection-inversion constants of ZipfSampler.sample, folded
        # out of the per-draw loop (same floats: _h_x1 - _h_n is the exact
        # subtraction the scalar sampler performs per call).
        zipf_fast = self._zipf_fast
        if zipf_fast:
            zdraws = sampler._draws
            z_n = sampler.n
            z_hn = sampler._h_n
            z_span = sampler._h_x1 - z_hn
            z_threshold = sampler._threshold
            z_one_minus_s = 1.0 - sampler.s
        for j in range(n):
            times[j] = t
            # Mixed-family arrival stream: same uniform draw as the scalar
            # _arrival (CON002 pins the per-request draw order).
            clients[j] = sample(rng)  # repro: noqa(PERF001) - mixed-family arrival stream, mirrors FlowEngine._arrival
            if zipf_fast:
                # Inlined ZipfSampler.sample + BatchedStream.random +
                # _h_integral_inverse/_helper1 (draw-for-draw identical;
                # the rare rejection check keeps calling the sampler's own
                # _h_integral/_h).
                while True:
                    pos = zdraws._pos
                    block = zdraws._block
                    if pos >= len(block):
                        zdraws._refill()
                        block = zdraws._block
                        pos = 0
                    zdraws._pos = pos + 1
                    u = z_hn + block[pos] * z_span
                    tt = u * z_one_minus_s
                    if tt < -1.0:
                        tt = -1.0
                    if abs(tt) > 1e-8:
                        x = exp((log1p(tt) / tt) * u)
                    else:
                        x = exp(
                            (1.0 - tt * (0.5 - tt * (1.0 / 3.0 - 0.25 * tt))) * u
                        )
                    key = int(x + 0.5)
                    if key < 1:
                        key = 1
                    elif key > z_n:
                        key = z_n
                    if (
                        key - x <= z_threshold
                        or u >= sampler._h_integral(key + 0.5) - sampler._h(key)
                    ):
                        break
            else:
                key = sample_key()
            # Inlined ConsistentHashRing.group_for_key cache probe (Zipf
            # workloads hit it almost always; misses hash + memoize there).
            hit = key_cache.get(key)
            if hit is None:
                hit = group_for_key(key)
            rgids[j], replicas_list[j] = hit
            if lo + j < last:
                t = t + rng.exponential(rate_inv)  # repro: noqa(PERF001) - mixed-family arrival stream, mirrors FlowEngine._arrival
        self._pending_time = t
        # Dense state for the whole block in one splice.
        self._issued_at[lo + 1 : hi + 1] = times
        self._replicas_of[lo + 1 : hi + 1] = replicas_list
        self._alive[lo + 1 : hi + 1] = b"\x01" * n
        if self._is_netrs:
            self._rgid_of[lo + 1 : hi + 1] = rgids
        elif not self._guarded:
            # Locality classes + per-class delivery-time tables (fast sends
            # bypass _send_along entirely; guarded runs keep the scalar
            # per-hop checks, netrs routes through the operator instead).
            rg_codes = self._rg_codes
            rack_index = self.geometry.rack_index
            racks_per_pod = self.geometry.racks_per_pod
            replica_racks: List[Tuple[int, ...]] = [()] * n
            replica_pods: List[Tuple[int, ...]] = [()] * n
            for j in range(n):
                rgid = rgids[j]
                codes = rg_codes.get(rgid)
                if codes is None:
                    racks = tuple(rack_index(name) for name in replicas_list[j])
                    codes = (racks, tuple(r // racks_per_pod for r in racks))
                    rg_codes[rgid] = codes
                replica_racks[j] = codes[0]
                replica_pods[j] = codes[1]
            times_arr = np.asarray(times, dtype=np.float64)
            crack = self._client_rack_arr[clients]
            cpod = self._client_pod_arr[clients]
            srack = np.asarray(replica_racks, dtype=np.int64)
            spod = np.asarray(replica_pods, dtype=np.int64)
            cls = np.empty((n, srack.shape[1]), dtype=np.int64)
            self._k_hop_class(crack, cpod, srack, spod, cls)
            path = np.empty((3, n), dtype=np.float64)
            for index, hops in enumerate(self._hop_arrays):
                self._k_path_chain(times_arr, hops, path[index])
            self._b_cls = cls.tolist()
            self._b_path = path.tolist()
        else:
            self._b_cls = None
        self._b_lo = lo
        self._b_hi = hi
        self._b_times = times
        self._b_clients = clients
        self._b_replicas = replicas_list
        self._b_rgids = rgids

    # ------------------------------------------------------------------
    # Drain loop: block cursor merged with the micro-heap on (time, seq)
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Drive the experiment until completion (or the safety horizon)."""
        # Mirrors the scalar run()'s opening arrival post: same draw, same
        # seq consumed -- the arrival event carries no payload because the
        # request under the cursor is already rolled forward in the block.
        self._seq += 1
        first_seq = self._seq
        self._pending_time = self._arrival_rng.exponential(self._rate_inv)  # repro: noqa(PERF001) - mixed-family arrival stream, mirrors FlowEngine.run
        self._load_chunk()
        if self._fast:
            # Arrivals never touch the heap in fast mode: the drain merges
            # a (time, seq) cursor over the block against the heap head,
            # which is exactly the order heap events would pop in.
            self._drain_fast(until, first_seq)
        else:
            if self._b_times:
                heappush(
                    self._heap,
                    (self._b_times[0], first_seq, self._issue_next_cb, ()),
                )
            self._drain(until)
        env = self.env
        if self._now > env.now:
            env.run(until=self._now)

    def _drain(self, until: Optional[float]) -> None:
        """Generic micro-event drain: one dispatch per heap event."""
        heap = self._heap
        env = self.env
        env_times = self._env_times
        bounded = until is not None
        fire_cb = self._fire_redundant_cb
        timeout_cb = self._timeout_cb
        alive = self._alive
        done = self._done
        micro = 0
        while not self._stopped:
            if not heap:
                break
            head = heap[0]
            when = head[0]
            if bounded and when > until:
                self._now = until
                break
            if env_times and env_times[0] <= when:
                # Fault transitions fire on the macro clock, strictly before
                # any micro-event at or after their timestamp (same ordering
                # as the scalar tier).
                while env_times and env_times[0] <= when:
                    env.run(until=env_times.pop(0))
            heappop(heap)
            self._now = when
            micro += 1
            cb = head[2]
            if cb is fire_cb or cb is timeout_cb:
                # Dead client timers (request already done or reclaimed) are
                # the common case; their handlers' first guard is inlined
                # here so the pop alone pays for them.  Scalar parity: the
                # event still executes (micro counted), its handler is just
                # the same no-op early return.
                rid = head[3][1]
                if done[rid] or not alive[rid]:
                    continue
            cb(*head[3])
        self.micro_events += micro

    def _drain_fast(self, until: Optional[float], first_seq: int) -> None:
        """Fast-mode drain: the five hot handlers inlined into one frame.

        Event-for-event this executes exactly what :meth:`_drain` would --
        same event order, same arithmetic, same RNG draws -- but the issue /
        deliver / complete / response / dead-timer branches run inside this
        loop's frame, keyed on the callback identity of the popped event, so
        the common path pays no Python calls and no repeated attribute
        loads.  The standalone methods (``_issue_next``, ``_v_deliver``,
        ``_v_complete``, ``_v_fast_response``, ``_v_fire_redundant``,
        ``_v_on_timeout``) remain the readable line-for-line mirrors of
        these branches and still execute every event that reaches the heap
        through a scalar-path send (retries, redundant duplicates under
        faults), which falls through to the generic dispatch below.

        Four bookkeeping devices keep the loop allocation-free without
        changing observable state:

        * **Pending-arrival merge** -- arrival times are monotone and only
          one arrival is outstanding at a time, so the arrival "event" is a
          ``(pa_time, pa_seq)`` local compared lexicographically against the
          heap head instead of a pushed-and-popped heap entry.  ``pa_seq``
          is the exact sequence number the heap event would have carried, so
          the merged order is the heap's own.
        * **Lazy clock** -- ``self._now`` is written only where code outside
          this frame can observe it (generic dispatch, tracker callbacks,
          heartbeat flushes, loop exit); every inlined branch uses the
          popped ``when`` directly.  Fault transitions read the macro
          ``env.now``, never ``_now``, so the fault drain needs no write.
          ``self.issued`` (always equal to the cursor here) is synced at the
          same points.
        * **Local accounting** -- transmissions / bytes / overhead accumulate
          in frame locals, flushed to the engine counters before any escape
          to code that could read or write them.
        * **Flat events** -- the inlined branches push
          ``(time, seq, sentinel, *args)`` without the inner args tuple
          (one allocation per event instead of two).  Heap ordering never
          compares past the unique ``seq``, so flat events coexist with the
          ``(time, seq, callback, args)`` events of scalar-path sends, which
          still route through the generic ``cb(*args)`` dispatch.  The stop
          flag is re-checked exactly where the handlers that can set it run
          (tracker callbacks, live timeouts, generic dispatch), preserving
          the scalar drain's exit points.
        """
        heap = self._heap
        env = self.env
        env_times = self._env_times
        bounded = until is not None
        issue_cb = self._issue_next_cb
        deliver_cb = self._deliver_cb
        complete_cb = self._v_complete_cb
        response_cb = self._fast_response_cb
        fire_cb = self._fire_redundant_cb
        timeout_cb = self._timeout_cb
        alive = self._alive
        done = self._done
        issued_at = self._issued_at
        primary = self._primary
        clients = self.clients
        per_client_counts = self.per_client_counts
        track_cache = self._track_cache
        server_by_name = self._server_by_name
        cls_hops = self._cls_hops
        req_size = self._req_size
        req_overhead = self._req_overhead
        replicas_of = self._replicas_of
        full_path = self._full_path
        hop_count = self.geometry.hop_count
        prior = self._sel_prior
        weight = self._sel_weight
        exponent = self._sel_exponent
        t_alpha = self._sel_alpha
        sts = self.service_time_scale
        policy = self._redundancy
        has_red = policy is not None
        red_min = self._red_min if has_red else 0
        red_pct = self._red_pct if has_red else 0.0
        red_mult = self._red_mult if has_red else 0.0
        red_default = self._red_default if has_red else 0.0
        timeout = self._timeout
        warmup = self._warmup
        recorder = self.recorder
        tracker = self.tracker
        dup_sent = self._dup_sent
        attempts = self._attempts
        late_seen = self._late_seen
        total = self._total
        cursor = self._cursor
        b_lo = self._b_lo
        b_hi = self._b_hi
        b_times = self._b_times
        b_clients = self._b_clients
        b_replicas = self._b_replicas
        b_rgids = self._b_rgids
        b_cls = self._b_cls
        b_path = self._b_path
        seq = self._seq
        micro = 0
        acc_tx = 0
        acc_bytes = 0
        acc_overhead = 0
        when = self._now
        if cursor < total:
            pa_time = b_times[cursor - b_lo]
            pa_seq = first_seq
        else:
            pa_time = _INF
            pa_seq = 0
        while True:
            if heap:
                head = heap[0]
                when = head[0]
                if pa_time < when or (pa_time == when and pa_seq < head[1]):
                    head = None
                    when = pa_time
            elif pa_time < _INF:
                head = None
                when = pa_time
            else:
                break
            if bounded and when > until:
                when = until
                break
            if env_times and env_times[0] <= when:
                # Fault transitions fire on the macro clock, strictly before
                # any micro-event at or after their timestamp.
                self._seq = seq
                self.issued = cursor
                while env_times and env_times[0] <= when:
                    env.run(until=env_times.pop(0))
                seq = self._seq
            micro += 1
            if head is None:
                # ---- issue the request under the cursor (mirror: _issue_next)
                j = cursor - b_lo
                cidx = b_clients[j]
                per_client_counts[cidx] += 1
                client = clients[cidx]
                rid = cursor + 1
                replicas = b_replicas[j]
                selector = client.selector
                # Inlined C3Selector.select + note_sent (no rate limiter, no
                # kernel mirror in fast mode): the exact single-pass scoring
                # loop, tie-breaks delegated back to the selector so the RNG
                # stream position matches.
                selector.selections += 1
                cache = track_cache[cidx]
                pairs = cache.get(b_rgids[j])
                if pairs is None:
                    tracks = selector._tracks
                    built = []
                    for server_name in replicas:
                        track = tracks.get(server_name)
                        if track is None:
                            track = selector._track(server_name)
                        built.append((server_name, track))
                    pairs = tuple(built)
                    cache[b_rgids[j]] = pairs
                best = None
                best_track = None
                best_score = _INF
                winners = None
                target_index = 0
                index = 0
                for server_name, track in pairs:
                    rate = track.service_rate
                    if not rate > 0:
                        rate = prior
                    expected_service = 1.0 / rate
                    q_hat = 1.0 + track.outstanding * weight + track.queue_size
                    score = (
                        track.response_time
                        - expected_service
                        + (q_hat**exponent) * expected_service
                    )
                    if score < best_score:
                        best = server_name
                        best_track = track
                        best_score = score
                        target_index = index
                        winners = None
                    elif score == best_score:
                        if winners is None:
                            winners = [best]
                        winners.append(server_name)
                    index += 1
                if winners is None:
                    target = best
                else:
                    target = selector._tie_break(winners)
                    target_index = replicas.index(target)
                    best_track = selector._tracks[target]
                best_track.outstanding += 1  # note_sent
                primary[rid] = target
                client.requests_sent += 1
                cls = b_cls[j][target_index]
                hops = cls_hops[cls]
                acc_tx += hops
                acc_bytes += req_size * hops
                seq += 1
                heappush(
                    heap,
                    (b_path[cls][j], seq, deliver_cb,
                     server_by_name[target], client, rid),
                )
                if has_red:
                    # Inlined _FlowClient._redundancy_threshold (cached
                    # percentile after min_samples, mean fallback in warmup).
                    history = client._history
                    if len(history._samples) >= red_min:
                        if (
                            client._cached_threshold is None
                            or client._samples_since_refresh >= 25
                        ):
                            client._cached_threshold = history.percentile(red_pct)
                            client._samples_since_refresh = 0
                        threshold = client._cached_threshold
                    else:
                        mean = history.mean()
                        if mean != mean:  # NaN: no history yet
                            threshold = red_default
                        else:
                            threshold = red_mult * mean
                    seq += 1
                    heappush(
                        heap, (when + threshold, seq, fire_cb, client, rid)
                    )
                if timeout is not None:
                    seq += 1
                    heappush(
                        heap, (when + timeout, seq, timeout_cb, client, rid)
                    )
                cursor += 1
                if cursor < total:
                    if cursor >= b_hi:
                        self._load_chunk()
                        b_lo = self._b_lo
                        b_hi = self._b_hi
                        b_times = self._b_times
                        b_clients = self._b_clients
                        b_replicas = self._b_replicas
                        b_rgids = self._b_rgids
                        b_cls = self._b_cls
                        b_path = self._b_path
                    seq += 1
                    pa_time = b_times[cursor - b_lo]
                    pa_seq = seq
                else:
                    pa_time = _INF
                continue
            heappop(heap)
            cb = head[2]
            if cb is deliver_cb:
                # ---- delivery at the server (mirror: _VFlowServer.handle_arrival)
                server = head[3]
                if server.down:
                    server.dropped_requests += 1
                    continue
                server.arrivals += 1
                waiting = server._waiting
                queued = len(waiting) + server._in_service
                if queued + 1 > server.max_queue_seen:
                    server.max_queue_seen = queued + 1
                if server._in_service < server.parallelism:
                    server._in_service += 1
                    mean = server._mean_const
                    if mean is None:
                        # Fluctuating mean: read the current tick directly,
                        # fall back to the tick-advancing method at
                        # boundaries (mirror: _Fluctuation.mean_at).
                        flux = server._mean
                        if when < flux._next:
                            mean = flux._current
                        else:
                            mean = flux.mean_at(when)
                    if server._fastdraw:
                        draws = server._draws
                        pos = draws._pos
                        block = draws._block
                        if pos >= len(block):
                            draws._refill()
                            block = draws._block
                            pos = 0
                        draws._pos = pos + 1
                        duration = block[pos] * mean * sts
                    else:
                        duration = server._draws.exponential(mean)
                        duration *= sts
                    seq += 1
                    heappush(
                        heap,
                        (when + duration, seq, complete_cb,
                         server, head[4], head[5], duration, server._epoch),
                    )
                else:
                    waiting.append((head[4], head[5], None))
                continue
            if cb is complete_cb:
                # ---- service completion (mirror: _VFlowServer._complete)
                server = head[3]
                if head[7] != server._epoch:
                    continue  # scheduled before a crash: died with the server
                server._in_service -= 1
                server.completions += 1
                alpha = server._alpha
                duration = head[6]
                server._ewma_service_time = (
                    alpha * server._ewma_service_time + (1 - alpha) * duration
                )
                waiting = server._waiting
                queue_size = len(waiting) + server._in_service
                service_rate = server.parallelism / server._ewma_service_time
                client = head[4]
                plan = server._resp_plan.get(client.name)
                if plan is None:
                    plan = self._response_plan(server.name, client.name)
                    server._resp_plan[client.name] = plan
                hops_t, count, nbytes, noverhead = plan
                t = when
                for delay in hops_t:
                    t += delay
                acc_tx += count
                acc_bytes += nbytes
                acc_overhead += noverhead
                seq += 1
                heappush(
                    heap,
                    (t, seq, response_cb,
                     client, head[5], server.name, queue_size, service_rate),
                )
                if waiting:
                    next_client, next_rid, _next_rv = waiting.popleft()
                    server._in_service += 1
                    mean = server._mean_const
                    if mean is None:
                        flux = server._mean
                        if when < flux._next:
                            mean = flux._current
                        else:
                            mean = flux.mean_at(when)
                    if server._fastdraw:
                        draws = server._draws
                        pos = draws._pos
                        block = draws._block
                        if pos >= len(block):
                            draws._refill()
                            block = draws._block
                            pos = 0
                        draws._pos = pos + 1
                        duration = block[pos] * mean * sts
                    else:
                        duration = server._draws.exponential(mean)
                        duration *= sts
                    seq += 1
                    heappush(
                        heap,
                        (when + duration, seq, complete_cb,
                         server, next_client, next_rid, duration, server._epoch),
                    )
                continue
            if cb is response_cb:
                # ---- response at the client (mirror: _v_fast_response)
                client = head[3]
                rid = head[4]
                client.responses_received += 1
                rid_alive = alive[rid]
                if rid_alive:
                    selector = client.selector
                    track = selector._tracks.get(head[5])
                    if track is None:
                        track = selector._track(head[5])
                    if track.outstanding > 0:
                        track.outstanding -= 1
                    latency = when - issued_at[rid]
                    if track.feedback_count == 0:
                        track.response_time = latency
                        track.queue_size = float(head[6])
                        track.service_rate = head[7]
                    else:
                        track.response_time = (
                            t_alpha * track.response_time + (1 - t_alpha) * latency
                        )
                        track.queue_size = (
                            t_alpha * track.queue_size + (1 - t_alpha) * head[6]
                        )
                        track.service_rate = (
                            t_alpha * track.service_rate + (1 - t_alpha) * head[7]
                        )
                    track.feedback_count += 1
                    track.last_feedback_at = when
                    selector.feedback_updates += 1
                    if not done[rid]:
                        done[rid] = 1
                        # Inlined LatencyRecorder.add: latency is a
                        # response-minus-issue difference, so the negative
                        # guard cannot fire; the sorted mirror (built by the
                        # R95 percentile queries) stays consistent.
                        history = client._history
                        history._samples.append(latency)
                        mirror = history._sorted
                        if mirror is not None:
                            insort(mirror, latency)
                        client._samples_since_refresh += 1
                        if rid > warmup:
                            recorder._samples.append(latency)
                            mirror = recorder._sorted
                            if mirror is not None:
                                insort(mirror, latency)
                        if not dup_sent.get(rid, 0) and not attempts.get(rid, 0):
                            alive[rid] = 0
                        # Inlined _complete_request (tracker tick + flush).
                        completed = tracker.completed + 1
                        tracker.completed = completed
                        stopping = False
                        if completed == tracker.expected:
                            self._now = when
                            self.issued = cursor
                            for callback in tracker._callbacks:
                                callback()
                            stopping = self._stopped
                        flush = self._since_flush + 1
                        if flush >= _FLUSH_EVERY:
                            self._since_flush = 0
                            self._seq = seq
                            self._now = when
                            self.issued = cursor
                            env.post_at(when, self._heartbeat)
                            env.run(until=when)
                            seq = self._seq
                        else:
                            self._since_flush = flush
                        if stopping:
                            break
                        continue
                client.late_responses += 1
                if rid_alive:
                    if attempts.get(rid, 0):
                        client.duplicates_suppressed += 1
                    seen = late_seen.get(rid, 0) + 1
                    late_seen[rid] = seen
                    if seen >= dup_sent.get(rid, 0) + attempts.get(rid, 0):
                        alive[rid] = 0
                continue
            if cb is fire_cb:
                rid = head[4]
                if done[rid] or not alive[rid]:
                    # Dead timer: same no-op early return as the handler,
                    # micro already counted.
                    continue
                # ---- live redundant duplicate (mirror: _v_fire_redundant
                # plus the unguarded _send_request/_send_along fast path;
                # note_sent has no mirror or limiter in fast mode).
                client = head[3]
                primary_target = primary[rid]
                others = [r for r in replicas_of[rid] if r != primary_target]
                if not others:
                    continue
                cdraws = client._draws
                if cdraws is not None and len(others) > 1:
                    target = others[int(cdraws.integers(len(others)))]
                else:
                    target = others[0]
                selector = client.selector
                track = selector._tracks.get(target)
                if track is None:
                    track = selector._track(target)
                track.outstanding += 1  # note_sent
                dup_sent[rid] = dup_sent.get(rid, 0) + 1
                client.redundant_sent += 1
                hops_t = full_path[hop_count(client.name, target)]
                t = when
                for delay in hops_t:
                    t += delay
                n_hops = len(hops_t)
                acc_tx += n_hops
                acc_bytes += req_size * n_hops
                acc_overhead += req_overhead * n_hops
                seq += 1
                heappush(
                    heap,
                    (t, seq, deliver_cb, server_by_name[target], client, rid),
                )
                continue
            if cb is timeout_cb:
                rid = head[4]
                if done[rid] or not alive[rid]:
                    continue
                # Live timeout: runs the standalone handler (retry logic is
                # cold); sync observable state around it like the generic
                # dispatch below.  It can lose the request and stop the run.
                self._seq = seq
                self._cursor = cursor
                self._now = when
                self.issued = cursor
                self.transmissions += acc_tx
                self.bytes_transferred += acc_bytes
                self.netrs_overhead_bytes += acc_overhead
                acc_tx = 0
                acc_bytes = 0
                acc_overhead = 0
                timeout_cb(head[3], rid)
                seq = self._seq
                cursor = self._cursor
                if self._stopped:
                    break
                continue
            # Rare events (retry timers, scalar-path sends under faults):
            # sync everything a handler could observe, then resume locals.
            self._seq = seq
            self._cursor = cursor
            self._now = when
            self.issued = cursor
            self.transmissions += acc_tx
            self.bytes_transferred += acc_bytes
            self.netrs_overhead_bytes += acc_overhead
            acc_tx = 0
            acc_bytes = 0
            acc_overhead = 0
            cb(*head[3])
            seq = self._seq
            cursor = self._cursor
            if self._stopped:
                break
        if pa_time < _INF:
            # Early exit (bounded horizon or stop) with an arrival still
            # pending: restore it as the heap event it stands for.
            heappush(heap, (pa_time, pa_seq, issue_cb, ()))
        self._seq = seq
        self._cursor = cursor
        self._now = when
        self.issued = cursor
        self.transmissions += acc_tx
        self.bytes_transferred += acc_bytes
        self.netrs_overhead_bytes += acc_overhead
        self.micro_events += micro

    def _v_deliver(self, server, client, rid: int) -> None:
        """Dispatch mirror of the fast drain's delivery branch."""
        server.handle_arrival(client, rid, None)

    def _v_complete(self, server, client, rid, rv, duration, epoch) -> None:
        """Dispatch mirror of the fast drain's completion branch."""
        server._complete(client, rid, rv, duration, epoch)

    def _issue_next(self) -> None:
        """Issue the request under the cursor (mirror of _arrival + issue)."""
        i = self._cursor
        j = i - self._b_lo
        cidx = self._b_clients[j]
        self.per_client_counts[cidx] += 1
        self.issued = i + 1
        client = self.clients[cidx]
        rid = i + 1  # the scalar tier's next(self._ids): one id per issue
        now = self._now
        replicas = self._b_replicas[j]
        heap = self._heap
        if self._is_netrs:
            # Backup draw kept for RNG parity, exactly as the scalar client.
            client.selector.select(replicas, now)
            client.requests_sent += 1
            self._send_via_operator(client, rid, None)
        else:
            # Fast mode never reaches this method (the megaloop's issue
            # branch inlines the C3 scoring loop); here the selector runs
            # through its public byte-equivalent entry points.
            selector = client.selector
            target = selector.select(replicas, now)
            selector.note_sent(target, now)
            target_index = replicas.index(target)
            self._primary[rid] = target
            client.requests_sent += 1
            block_cls = self._b_cls
            if block_cls is None:  # guarded: per-hop fault checks
                self._send_request(client, rid, None, target)
            else:
                cls = block_cls[j][target_index]
                hops = self._cls_hops[cls]
                self.transmissions += hops
                self.bytes_transferred += self._req_size * hops
                self._seq += 1
                heappush(
                    heap,
                    (
                        self._b_path[cls][j],
                        self._seq,
                        self._arrival_of[target],
                        (client, rid, None),
                    ),
                )
        if self._redundancy is not None:
            # Inlined _FlowClient._redundancy_threshold: cached percentile
            # after min_samples, mean-based fallback during warmup (the
            # constants were folded once in __init__, same arithmetic).
            history = client._history
            if len(history._samples) >= self._red_min:
                if (
                    client._cached_threshold is None
                    or client._samples_since_refresh >= 25
                ):
                    client._cached_threshold = history.percentile(self._red_pct)
                    client._samples_since_refresh = 0
                threshold = client._cached_threshold
            else:
                mean = history.mean()
                if mean != mean:  # NaN: no history yet
                    threshold = self._red_default
                else:
                    threshold = self._red_mult * mean
            self._seq += 1
            heappush(
                heap,
                (now + threshold, self._seq, self._fire_redundant_cb, (client, rid)),
            )
        if self._timeout is not None:
            self._seq += 1
            heappush(
                heap,
                (now + self._timeout, self._seq, self._timeout_cb, (client, rid)),
            )
        i += 1
        self._cursor = i
        if i < self._total:
            if i >= self._b_hi:
                self._load_chunk()
            self._seq += 1
            heappush(
                heap,
                (self._b_times[i - self._b_lo], self._seq, self._issue_next_cb, ()),
            )

    # ------------------------------------------------------------------
    # Client endpoints over flat arrays (mirrors of _FlowClient methods)
    # ------------------------------------------------------------------
    def _v_fire_redundant(self, client, rid: int) -> None:
        if not self._alive[rid] or self._done[rid]:
            return
        primary_target = self._primary[rid]
        others = [r for r in self._replicas_of[rid] if r != primary_target]
        if not others:
            return
        if client._draws is not None and len(others) > 1:
            target = others[int(client._draws.integers(len(others)))]
        else:
            target = others[0]
        client.selector.note_sent(target, self._now)
        self._dup_sent[rid] = self._dup_sent.get(rid, 0) + 1
        client.redundant_sent += 1
        self._send_request(client, rid, None, target)

    def _v_on_timeout(self, client, rid: int) -> None:
        if not self._alive[rid] or self._done[rid]:
            return
        client.timeouts += 1
        attempts = self._attempts.get(rid, 0)
        if attempts >= client.max_retries:
            self._done[rid] = 1
            client.requests_lost += 1
            self._alive[rid] = 0
            self._complete_request()
            return
        attempts += 1
        self._attempts[rid] = attempts
        client.retries += 1
        now = self._now
        if self._is_netrs:
            client.selector.select(self._replicas_of[rid], now)  # fresh backup draw
            client.requests_sent += 1
            self._send_via_operator(client, rid, None)
        else:
            replicas = self._replicas_of[rid]
            tried = self._tried.get(rid)
            if tried is None:
                tried = (self._primary[rid],)
            untried = tuple(r for r in replicas if r not in tried)
            candidates = untried or replicas
            if len(candidates) > 1:
                target = client.selector.select(candidates, now)
            else:
                target = candidates[0]
            self._tried[rid] = tried + (target,)
            self._primary[rid] = target
            client.selector.note_sent(target, now)
            client.requests_sent += 1
            self._send_request(client, rid, None, target)
        delay = client.request_timeout * min(2.0**attempts, _BACKOFF_CAP)
        self._post(delay, self._v_on_timeout, (client, rid))

    def _response_plan(self, server_name: str, client_name: str) -> tuple:
        """Memoizable response-delivery plan for one (server, client) pair.

        Plans are shared per locality class: the hop-delay chain and the
        byte accounting depend only on the hop count, so the per-pair memo
        in ``_VFlowServer._resp_plan`` resolves misses with one dict probe
        here instead of rebuilding the tuple per pair.
        """
        hop_key = self.geometry.hop_count(server_name, client_name)
        plan = self._resp_by_class.get(hop_key)
        if plan is None:
            hops = self._full_path[hop_key]
            size, overhead = self._sizes["response"]
            count = len(hops)
            plan = (hops, count, size * count, overhead * count)
            self._resp_by_class[hop_key] = plan
        return plan

    def _v_fast_response(
        self, client, rid: int, server: str, queue_size: int, service_rate: float
    ) -> None:
        """Fast-mode response endpoint: ``_v_handle_response`` with the
        C3 ``note_response`` EWMA fold inlined (scalar ``ServerStatus``
        fields arrive as the ``queue_size``/``service_rate`` scalars the
        ``_VFlowServer`` completion computed -- same expressions, same
        float operations, no allocation)."""
        client.responses_received += 1
        now = self._now
        alive = self._alive[rid]
        if alive:
            selector = client.selector
            track = selector._tracks.get(server)
            if track is None:
                track = selector._track(server)
            if track.outstanding > 0:
                track.outstanding -= 1
            latency = now - self._issued_at[rid]
            alpha = selector.ewma_alpha
            if track.feedback_count == 0:
                track.response_time = latency
                track.queue_size = float(queue_size)
                track.service_rate = service_rate
            else:
                track.response_time = (
                    alpha * track.response_time + (1 - alpha) * latency
                )
                track.queue_size = (
                    alpha * track.queue_size + (1 - alpha) * queue_size
                )
                track.service_rate = (
                    alpha * track.service_rate + (1 - alpha) * service_rate
                )
            track.feedback_count += 1
            track.last_feedback_at = now
            selector.feedback_updates += 1
            if not self._done[rid]:
                self._done[rid] = 1
                client._history.add(latency)
                client._samples_since_refresh += 1
                if rid > self._warmup:
                    self.recorder.add(latency)
                if not self._dup_sent.get(rid, 0) and not self._attempts.get(rid, 0):
                    self._alive[rid] = 0
                # Inlined _complete_request (tracker tick + heartbeat flush).
                tracker = self.tracker
                completed = tracker.completed + 1
                tracker.completed = completed
                if completed == tracker.expected:
                    for callback in tracker._callbacks:
                        callback()
                flush = self._since_flush + 1
                if flush >= _FLUSH_EVERY:
                    self._since_flush = 0
                    env = self.env
                    env.post_at(self._now, self._heartbeat)
                    env.run(until=self._now)
                else:
                    self._since_flush = flush
                return
        client.late_responses += 1
        if alive:
            if self._attempts.get(rid, 0):
                client.duplicates_suppressed += 1
            seen = self._late_seen.get(rid, 0) + 1
            self._late_seen[rid] = seen
            if seen >= self._dup_sent.get(rid, 0) + self._attempts.get(rid, 0):
                self._alive[rid] = 0

    def _v_handle_response(self, client, rid: int, server: str, status) -> None:
        client.responses_received += 1
        now = self._now
        alive = self._alive[rid]
        if alive:
            client.selector.note_response(
                server, now - self._issued_at[rid], status, now
            )
        if not alive or self._done[rid]:
            client.late_responses += 1
            if alive:
                if self._attempts.get(rid, 0):
                    client.duplicates_suppressed += 1
                seen = self._late_seen.get(rid, 0) + 1
                self._late_seen[rid] = seen
                if seen >= self._dup_sent.get(rid, 0) + self._attempts.get(rid, 0):
                    self._alive[rid] = 0
            return
        self._done[rid] = 1
        latency = now - self._issued_at[rid]
        client._history.add(latency)
        client._samples_since_refresh += 1
        if rid > self._warmup:
            self.recorder.add(latency)
        if not self._dup_sent.get(rid, 0) and not self._attempts.get(rid, 0):
            self._alive[rid] = 0
        self._complete_request()

    # ------------------------------------------------------------------
    # Engine sends routed to the vector endpoints
    # ------------------------------------------------------------------
    def _send_response(self, server, client, rid, rv, status) -> None:
        if self._is_netrs:
            self._send_netrs_response(server, client, rid, rv, status)
            return
        hops = self._full_path[self.geometry.hop_count(server.name, client.name)]
        size, overhead = self._sizes["response"]
        first = last = None
        if self._guarded:
            first = (server.name, self.geometry.tor_name(server.name))
            last = (self.geometry.tor_name(client.name), client.name)
        self._send_along(
            hops, first, last, size, overhead,
            self._v_handle_response, (client, rid, server.name, status),
        )

    def _select_work(self, op, client, rid, entry):
        """Accelerator work: entry state read from the rid-indexed arrays."""
        now = self._now
        candidates = self.ring.replicas(self._rgid_of[rid])
        server = op.selector.select(candidates, now)
        op.selector.note_sent(server, now)
        op.requests_handled += 1
        return (op, client, rid, server, now)  # retaining value = now

    def _tor_response(self, client, rid, rv, server_name, status) -> None:
        """Response reaches the client's ToR: clone to the RSNode, forward."""
        op = self._operator_of[client.name]
        op.accelerator.submit_at(
            self._now, self._absorb_response, (op, rv, server_name, status), None
        )
        link = (self.geometry.tor_name(client.name), client.name)
        lat = self._host_lat
        if self._guarded:
            if link in self._dead_links:
                self.packets_dropped += 1
                return
            factor = self._degraded.get(link)
            if factor is not None:
                lat *= factor
        size, overhead = self._sizes["netrs_response_marked"]
        self._account(1, size, overhead)
        self._post_at(
            lat + self._now, self._v_handle_response, (client, rid, server_name, status)
        )
