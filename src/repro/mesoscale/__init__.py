"""Mesoscale fidelity tier: flow-level simulation with a packet-tier gate.

The packet engine (:mod:`repro.network`) walks every hop of every packet --
~10 engine events per request -- which caps experiments near the paper's
1024-host evaluation.  This package provides the second fidelity tier:
requests become a handful of scheduled completions from an analytic
link/queue model (:mod:`repro.mesoscale.flow`), with the selection
algorithms, RNG streams and client/server queue logic shared with the
packet tier so the two agree on the paper's configurations.

Select it with ``ExperimentConfig(fidelity="flow")`` (or ``--fidelity flow``
on the CLI); :mod:`repro.mesoscale.validate` and ``netrs validate-fidelity``
gate the agreement between the tiers.  See docs/MESOSCALE.md.

Two performance layers ride on top of the flow tier, both byte-identical
to it: the struct-of-arrays fast path (:mod:`repro.mesoscale.vector`,
``vector_batch > 0``) and the sharded parallel loop
(:mod:`repro.mesoscale.shard`, ``shards > 1``).
"""

from repro.mesoscale.flow import FlowEngine
from repro.mesoscale.geometry import FatTreeGeometry
from repro.mesoscale.runner import run_flow_experiment
from repro.mesoscale.shard import (
    merge_outcomes,
    run_sharded_flow_experiment,
    shard_configs,
)
from repro.mesoscale.support import FLOW_SCHEMES, ensure_flow_supported
from repro.mesoscale.vector import VectorFlowEngine
from repro.mesoscale.validate import (
    FidelityReport,
    Tolerances,
    VALIDATION_SCENARIOS,
    validate_fidelity,
)

__all__ = [
    "FLOW_SCHEMES",
    "FatTreeGeometry",
    "FidelityReport",
    "FlowEngine",
    "Tolerances",
    "VALIDATION_SCENARIOS",
    "VectorFlowEngine",
    "ensure_flow_supported",
    "merge_outcomes",
    "run_flow_experiment",
    "run_sharded_flow_experiment",
    "shard_configs",
    "validate_fidelity",
]
