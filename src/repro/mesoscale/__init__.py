"""Mesoscale fidelity tier: flow-level simulation with a packet-tier gate.

The packet engine (:mod:`repro.network`) walks every hop of every packet --
~10 engine events per request -- which caps experiments near the paper's
1024-host evaluation.  This package provides the second fidelity tier:
requests become a handful of scheduled completions from an analytic
link/queue model (:mod:`repro.mesoscale.flow`), with the selection
algorithms, RNG streams and client/server queue logic shared with the
packet tier so the two agree on the paper's configurations.

Select it with ``ExperimentConfig(fidelity="flow")`` (or ``--fidelity flow``
on the CLI); :mod:`repro.mesoscale.validate` and ``netrs validate-fidelity``
gate the agreement between the tiers.  See docs/MESOSCALE.md.
"""

from repro.mesoscale.flow import FlowEngine
from repro.mesoscale.geometry import FatTreeGeometry
from repro.mesoscale.runner import run_flow_experiment
from repro.mesoscale.support import FLOW_SCHEMES, ensure_flow_supported
from repro.mesoscale.validate import (
    FidelityReport,
    Tolerances,
    VALIDATION_SCENARIOS,
    validate_fidelity,
)

__all__ = [
    "FLOW_SCHEMES",
    "FatTreeGeometry",
    "FidelityReport",
    "FlowEngine",
    "Tolerances",
    "VALIDATION_SCENARIOS",
    "ensure_flow_supported",
    "run_flow_experiment",
    "validate_fidelity",
]
