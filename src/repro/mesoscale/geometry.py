"""Constant-space fat-tree geometry for the flow tier.

The packet tier materializes every node and edge of the k-ary fat-tree
(:mod:`repro.network.topology`); at the mesoscale target of ~100k hosts that
graph alone costs hundreds of MB and seconds of build time.  The flow tier
only ever needs three facts about the topology:

* the **host-name list in canonical build order** -- identical to
  ``topology.hosts``, so the seeded ``placement`` permutation assigns the
  same client/server roles in both tiers at equal ``fat_tree_k``;
* the **locality class** of a host pair (same rack / same pod / cross-pod),
  which fixes the hop count (2 / 4 / 6) and hence the deterministic path
  delay under the paper's pure-delay link model;
* each host's **ToR name**, for NetRS operator placement and for resolving
  host-access-link fault targets.

``FatTreeGeometry`` provides exactly that from O(hosts) memory: one name
list plus one name->rack dict, no Node objects and no adjacency sets.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError


class FatTreeGeometry:
    """Host naming, locality and ToR lookup for a k-ary fat-tree."""

    __slots__ = ("k", "pods", "racks_per_pod", "hosts_per_rack", "hosts", "_rack_of")

    def __init__(self, k: int) -> None:
        if k < 2 or k % 2:
            raise ConfigurationError(f"fat_tree_k must be even and >= 2, got {k}")
        half = k // 2
        self.k = k
        self.pods = k
        self.racks_per_pod = half
        self.hosts_per_rack = half
        hosts: List[str] = []
        rack_of: Dict[str, int] = {}
        # Same nesting order as repro.network.topology.build_tree: pods
        # ascending, racks ascending, host index ascending.  topology.hosts
        # preserves insertion order, so these lists match element-for-element.
        for pod in range(k):
            for rack in range(half):
                global_rack = pod * half + rack
                for index in range(half):
                    name = f"host{pod}.{rack}.{index}"
                    hosts.append(name)
                    rack_of[name] = global_rack
        self.hosts = hosts
        self._rack_of = rack_of

    def total_hosts(self) -> int:
        """Hosts in the tree: ``k^3 / 4``."""
        return len(self.hosts)

    def rack_index(self, host: str) -> int:
        """Global rack index of ``host`` (pod-major)."""
        return self._rack_of[host]

    def pod_index(self, host: str) -> int:
        """Pod index of ``host``."""
        return self._rack_of[host] // self.racks_per_pod

    def tor_name(self, host: str) -> str:
        """Name of the ToR switch fronting ``host``."""
        pod, rack = divmod(self._rack_of[host], self.racks_per_pod)
        return f"tor{pod}.{rack}"

    def is_host(self, name: str) -> bool:
        """Whether ``name`` is one of this tree's hosts."""
        return name in self._rack_of

    def hop_count(self, a: str, b: str) -> int:
        """Hops on the ECMP path between hosts ``a`` and ``b`` (2, 4 or 6).

        Same rack: host-tor-host.  Same pod: host-tor-agg-tor-host.
        Cross-pod: host-tor-agg-core-agg-tor-host.  All ECMP choices are
        latency-equal, so the class alone fixes the path delay.
        """
        rack_a = self._rack_of[a]
        rack_b = self._rack_of[b]
        if rack_a == rack_b:
            return 2
        if rack_a // self.racks_per_pod == rack_b // self.racks_per_pod:
            return 4
        return 6
