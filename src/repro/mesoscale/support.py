"""Feature gating for the mesoscale (flow-level) fidelity tier.

The flow tier reproduces the packet engine's behaviour for the paper's core
read path; everything it cannot faithfully model is rejected *up front* with
a :class:`~repro.errors.ConfigurationError` naming the packet tier as the
fallback.  ``ExperimentConfig.validate`` calls :func:`ensure_flow_supported`
lazily whenever ``fidelity="flow"``, so unsupported combinations fail at
config time (CLI, sweeps, job creation) rather than mid-run.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Schemes the flow tier models (see docs/MESOSCALE.md for the mapping).
FLOW_SCHEMES = ("clirs", "clirs-r95", "netrs-tor")


def _reject(reason: str) -> None:
    raise ConfigurationError(
        f"fidelity='flow' does not support {reason}; "
        "use fidelity='packet' for this configuration (docs/MESOSCALE.md)"
    )


def ensure_flow_supported(config) -> None:
    """Raise :class:`ConfigurationError` if ``config`` needs the packet tier."""
    if config.shards > 1:
        _ensure_shardable(config)
    if config.scheme not in FLOW_SCHEMES:
        _reject(
            f"scheme {config.scheme!r} (supported: {', '.join(FLOW_SCHEMES)}; "
            "multi-tier RSNode placement is packet-tier only)"
        )
    if config.workload_mode != "open":
        _reject("closed-loop workloads")
    if config.write_fraction:
        _reject(
            "mixed read/write workloads (quorum writes are not mirrored "
            "into the flow tier yet; set write_fraction=0)"
        )
    if config.read_quorum is not None and config.read_quorum > 1:
        _reject(
            "quorum reads (the digest-probe path is not mirrored into the "
            "flow tier yet; leave read_quorum unset)"
        )
    if config.churn_schedule:
        _reject(
            "membership churn (ring migration traffic is not mirrored into "
            "the flow tier yet; leave churn_schedule unset)"
        )
    if config.background_traffic_rate > 0:
        _reject("background traffic")
    if config.track_link_stats:
        _reject("per-link byte accounting (there are no per-link queues)")
    if config.replan_period is not None:
        _reject("periodic replanning (the flow tier deploys one static plan)")
    if config.scheme == "netrs-tor":
        if config.group_granularity != "rack":
            _reject("non-rack traffic-group granularity with netrs-tor")
        # The packet tier degrades over-capacity groups to DRS; the flow
        # tier has no DRS path, so reject configs whose per-ToR demand
        # (uniform estimate) would exceed the accelerator budget.
        half = config.fat_tree_k // 2
        clients_per_rack = min(config.n_clients, half)
        group_rate = config.arrival_rate() * clients_per_rack / config.n_clients
        capacity = (
            config.max_accelerator_utilization
            * config.accelerator_cores
            / config.accelerator_service_time
            / config.work_per_request
        )
        if group_rate > capacity:
            _reject(
                "netrs-tor with per-ToR demand above the accelerator budget "
                "(the packet tier would engage DRS)"
            )
    if config.fault_schedule:
        from repro.faults.schedule import parse_fault_schedule

        for event in parse_fault_schedule(config.fault_schedule).events:
            kind = type(event).__name__
            if kind in ("RSNodeDown", "RSNodeUp"):
                _reject("RSNode fault events")
            if kind in ("LinkDown", "LinkUp", "LinkDegrade"):
                if not (_is_host(event.a) or _is_host(event.b)):
                    _reject(
                        f"link fault on {event.a}<->{event.b}: only "
                        "host-access links map onto the flow model "
                        "(fabric cuts imply rerouting)"
                    )
                if config.link_bandwidth is not None:
                    _reject(
                        "link faults combined with link_bandwidth (the "
                        "analytic serialization model has no per-link state)"
                    )


def _is_host(name: str) -> bool:
    target = name.strip()
    return target.startswith("host") or target.startswith(("server#", "client#"))


def _ensure_shardable(config) -> None:
    """Reject configs the shard fan-out cannot split evenly (or at all).

    Sharding models the system as ``shards`` disjoint sub-systems, so every
    shard needs an identical node block and at least one request; fault
    targets must remap onto a shard-local index space.
    """
    shards = config.shards
    if config.n_servers % shards:
        raise ConfigurationError(
            f"shards={shards} must divide n_servers={config.n_servers} "
            "(each shard is an identical sub-system; docs/MESOSCALE.md)"
        )
    if config.n_clients % shards:
        raise ConfigurationError(
            f"shards={shards} must divide n_clients={config.n_clients} "
            "(each shard is an identical sub-system; docs/MESOSCALE.md)"
        )
    if config.n_servers // shards < config.replication_factor:
        raise ConfigurationError(
            f"each of {shards} shards would hold "
            f"{config.n_servers // shards} servers, fewer than "
            f"replication_factor={config.replication_factor}"
        )
    if config.total_requests < shards:
        raise ConfigurationError(
            f"total_requests={config.total_requests} cannot be split over "
            f"{shards} shards (every shard needs at least one request)"
        )
    if config.fault_schedule:
        # The remap itself is the check: it raises on raw host names and
        # on link faults whose endpoints live in different shards.
        from repro.mesoscale.shard import split_fault_schedule

        split_fault_schedule(config)
