"""Declared flow-vs-packet mirror contracts (checked by ``netrs contracts``).

The flow tier (:mod:`repro.mesoscale.flow`) replays the packet tier's
client/server/selector/workload logic line for line; that claim is enforced
statically by ``repro.lint.contracts`` (rule CON001), which compares each
pair below as normalized ASTs.  Every rename, drop and equivalence here is
a *reviewed, allowed* rewrite -- the flow tier's transport substitutions
(``host.send`` -> closed-form delivery, ``env.call_in`` -> the micro-heap)
and its read-only-path omissions (writes, trace sinks, fault-free guards).
Anything not declared is drift and fails CI.

When you edit one side of a pair, replay the edit into the other side in
the same commit; if the rewrite is genuinely tier-specific, declare it
here -- the declaration is the reviewable artifact.

CON002 contracts bind the RNG surface: the stream *families* both tiers
create (a renamed family is a silently different seed) and the ordered
draws on the shared mixed-family arrival stream.

The vectorized flow tier (:mod:`repro.mesoscale.vector`) is a third layer
of the same discipline: its batched prologue and flat endpoints replay the
scalar flow tier, with the *scalar* engine as oracle.  Most of its surface
is structurally vectorized (one megaloop instead of per-entity methods)
and is covered by the runtime byte-identity suites instead; the endpoints
below stayed statement-shaped, so they get static pairs too, and its
arrival-stream draw order is pinned against ``FlowEngine._arrival``.
"""

from __future__ import annotations

from repro.lint.contracts import (
    ContractRegistry,
    DrawSequencePair,
    MirrorPair,
    Site,
    StreamFamilyContract,
)

_FLOW = "src/repro/mesoscale/flow.py"
_VECTOR = "src/repro/mesoscale/vector.py"
_SERVER = "src/repro/kvstore/server.py"
_CLIENT = "src/repro/kvstore/client.py"
_WORKLOAD = "src/repro/kvstore/workload.py"
_FLUCTUATION = "src/repro/kvstore/fluctuation.py"
_SELECTOR_NODE = "src/repro/core/selector_node.py"
_SCENARIOS = "src/repro/experiments/scenarios.py"

#: The packet tier's write path sends real packets; the flow tier reuses
#: the entry and lets the engine deliver analytically.  These makeup
#: statements are the declared transport substitution for KVClient.issue.
_ISSUE_NETRS_PACKET = (
    "packet = make_request(client=self.name, request_id=request_id, key=key, "
    "rgid=rgid, backup_replica=backup, issued_at=now, netrs=True)"
)
_ISSUE_CLIRS_PACKET = (
    "packet = make_request(client=self.name, request_id=request_id, key=key, "
    "rgid=rgid, backup_replica=target, issued_at=now, netrs=False, dst=target)"
)
_RETRY_NETRS_PACKET = (
    "packet = make_request(client=self.name, request_id=request_id, "
    "key=entry.key, rgid=entry.rgid, backup_replica=backup, "
    "issued_at=entry.issued_at, netrs=True)"
)
_RETRY_CLIRS_PACKET = (
    "packet = make_request(client=self.name, request_id=request_id, "
    "key=entry.key, rgid=entry.rgid, backup_replica=target, "
    "issued_at=entry.issued_at, netrs=False, dst=target)"
)
_REDUNDANT_PACKET = (
    "duplicate = make_request(client=self.name, request_id=request_id, "
    "key=entry.key, rgid=entry.rgid, backup_replica=target, "
    "issued_at=entry.issued_at, netrs=False, dst=target)"
)

MIRROR_PAIRS = (
    # -- KVServer <-> _FlowServer --------------------------------------
    MirrorPair(
        name="server.fail",
        reference=Site(_SERVER, "KVServer.fail"),
        mirror=Site(_FLOW, "_FlowServer.fail"),
    ),
    MirrorPair(
        name="server.recover",
        reference=Site(_SERVER, "KVServer.recover"),
        mirror=Site(_FLOW, "_FlowServer.recover"),
    ),
    MirrorPair(
        name="server.arrival",
        reference=Site(_SERVER, "KVServer.handle_packet"),
        mirror=Site(_FLOW, "_FlowServer.handle_arrival"),
        # Version digests and migration transfers are consistency-protocol
        # metadata (docs/CONSISTENCY.md); the flow tier rejects write/churn
        # configs up front, so the dispatch has no mirror.
        drop_reference=(
            "if packet.is_digest or packet.is_migration: ...",
        ),
        equivalences=(
            (
                "self._begin_service(packet, arrived_at=self.env.now)",
                "self._begin(client, rid, rv)",
            ),
            (
                "self._waiting.append((packet, self.env.now))",
                "self._waiting.append((client, rid, rv))",
            ),
        ),
    ),
    MirrorPair(
        name="server.begin_service",
        reference=Site(_SERVER, "KVServer._begin_service"),
        mirror=Site(_FLOW, "_FlowServer._begin"),
        # The packet tier stamps per-packet telemetry; the flow tier has no
        # packet.  The calibration scale multiplies by exactly 1.0 in
        # fidelity-checked runs.
        drop_reference=(
            "packet.server_queue_delay = self.env.now - arrived_at",
            "packet.server_service_time = duration",
        ),
        drop_mirror=(
            "engine = self.engine",
            "duration *= engine.service_time_scale",
        ),
        renames=(
            ("self.service_model.current_mean", "self._mean.mean_at(engine.now)"),
        ),
        equivalences=(
            (
                "self.env.post_in(duration, self._complete, (packet, duration, self._epoch))",
                "engine._post(duration, self._complete, (client, rid, rv, duration, self._epoch))",
            ),
        ),
    ),
    MirrorPair(
        name="server.complete",
        reference=Site(_SERVER, "KVServer._complete"),
        mirror=Site(_FLOW, "_FlowServer._complete"),
        # LWW version folding only matters once writes exist, and the flow
        # tier rejects write workloads (mesoscale.support).
        drop_reference=("self._fold_version(packet, response)",),
        drop_mirror=("engine = self.engine",),
        equivalences=(
            (
                "response = make_response(packet, server=self.name, "
                "status=self.status(), value_size=self.value_size)",
                "status = ServerStatus(queue_size=len(self._waiting) + self._in_service, "
                "service_rate=self.parallelism / self._ewma_service_time, "
                "timestamp=engine.now)",
            ),
            (
                "self.host.send(response)",
                "engine._send_response(self, client, rid, rv, status)",
            ),
            (
                "next_packet, arrived_at = self._waiting.popleft()",
                "next_client, next_rid, next_rv = self._waiting.popleft()",
            ),
            (
                "self._begin_service(next_packet, arrived_at)",
                "self._begin(next_client, next_rid, next_rv)",
            ),
        ),
    ),
    # -- KVClient <-> _FlowClient --------------------------------------
    MirrorPair(
        name="client.issue",
        reference=Site(_CLIENT, "KVClient.issue"),
        mirror=Site(_FLOW, "_FlowClient.issue"),
        renames=(("self.env", "engine"),),
        drop_reference=(
            _ISSUE_NETRS_PACKET,
            _ISSUE_CLIRS_PACKET,
            "delay = self._redundancy_threshold()",
            "if self.read_quorum > 1: ...",
        ),
        drop_mirror=("engine = self.engine",),
        equivalences=(
            ("request_id = next(_request_ids)", "request_id = next(engine._ids)"),
            (
                "backup = self.selector.select(replicas, now)",
                "self.selector.select(replicas, now)",
            ),
            (
                "entry = _Outstanding(key=key, rgid=rgid, replicas=replicas, "
                "issued_at=now, record=record, primary_target=primary_target)",
                "entry = _Entry(key, rgid, replicas, now, record, primary_target)",
            ),
            (
                "self.host.send(packet)",
                "if self.netrs:\n"
                "    engine._send_via_operator(self, request_id, entry)\n"
                "else:\n"
                "    engine._send_request(self, request_id, entry, primary_target)",
            ),
            (
                "entry.timer = engine.call_in(delay, self._fire_redundant, request_id)",
                "engine._post(self._redundancy_threshold(), self._fire_redundant, (request_id,))",
            ),
            (
                "entry.timeout_timer = engine.call_in(self.request_timeout, "
                "self._on_timeout, request_id)",
                "engine._post(self.request_timeout, self._on_timeout, (request_id,))",
            ),
        ),
    ),
    MirrorPair(
        # No declarations at all: the bodies agree once the assert is
        # stripped and math.isnan(x) is canonicalized to x != x.
        name="client.redundancy_threshold",
        reference=Site(_CLIENT, "KVClient._redundancy_threshold"),
        mirror=Site(_FLOW, "_FlowClient._redundancy_threshold"),
    ),
    MirrorPair(
        name="client.fire_redundant",
        reference=Site(_CLIENT, "KVClient._fire_redundant"),
        mirror=Site(_FLOW, "_FlowClient._fire_redundant"),
        renames=(("self.env", "self.engine"),),
        drop_reference=(
            _REDUNDANT_PACKET,
            "duplicate.is_redundant = True",
        ),
        equivalences=(
            (
                "self.host.send(duplicate)",
                "self.engine._send_request(self, request_id, entry, target)",
            ),
        ),
    ),
    MirrorPair(
        name="client.on_timeout",
        reference=Site(_CLIENT, "KVClient._on_timeout"),
        mirror=Site(_FLOW, "_FlowClient._on_timeout"),
        renames=(("self.env", "engine"),),
        # Send accounting and the packet build live inside the branches on
        # the mirror side but after them on the reference side; both are
        # dropped and the remaining selector/entry state must agree.
        drop_reference=(
            _RETRY_NETRS_PACKET,
            _RETRY_CLIRS_PACKET,
            "self.requests_sent += 1",
            "self.host.send(packet)",
            "if self.on_complete is not None: ...",
            "if entry.quorum is not None and entry.quorum.data_seen: ...",
        ),
        drop_mirror=(
            "engine = self.engine",
            "self.requests_sent += 1",
            "engine._send_via_operator(self, request_id, entry)",
            "engine._send_request(self, request_id, entry, target)",
        ),
        equivalences=(
            (
                "backup = self.selector.select(entry.replicas, now)",
                "self.selector.select(entry.replicas, now)",
            ),
            (
                "if self.tracker is not None:\n    self.tracker.complete()",
                "engine._complete_request()",
            ),
            (
                "entry.timeout_timer = engine.call_in(delay, self._on_timeout, request_id)",
                "engine._post(delay, self._on_timeout, (request_id,))",
            ),
        ),
    ),
    MirrorPair(
        name="client.handle_response",
        reference=Site(_CLIENT, "KVClient.handle_packet"),
        mirror=Site(_FLOW, "_FlowClient.handle_response"),
        renames=(
            ("self.env", "engine"),
            ("packet.request_id", "request_id"),
            ("packet.server", "server"),
        ),
        # Write acks, trace sinks, timer cancellation and the on_complete
        # hook are packet-tier-only surfaces (the flow tier is read-only,
        # its timers self-disarm on entry.done, and closed-loop/trace
        # instrumentation is unsupported -- see mesoscale.support).
        drop_reference=(
            "status = packet.server_status",
            "if packet.is_digest: ...",
            "if entry is not None and entry.is_write: ...",
            "if entry.quorum is not None: ...",
            "if self.trace_sink is not None: ...",
            "if entry.timer is not None: ...",
            "if entry.timeout_timer is not None: ...",
            "if self.on_complete is not None: ...",
        ),
        drop_mirror=("engine = self.engine",),
        equivalences=(
            (
                "if status is not None and entry is not None: ...",
                "if entry is not None: ...",
            ),
            (
                "if self.tracker is not None:\n    self.tracker.complete()",
                "engine._complete_request()",
            ),
        ),
    ),
    # -- service fluctuation -------------------------------------------
    MirrorPair(
        name="fluctuation.draw",
        reference=Site(_FLUCTUATION, "BimodalFluctuation._draw"),
        mirror=Site(_FLOW, "_Fluctuation._draw"),
        renames=(("self.base_service_time", "self.base"),),
    ),
    # -- NetRS selector (accelerator work) -----------------------------
    MirrorPair(
        name="selector.on_request",
        reference=Site(_SELECTOR_NODE, "NetRSSelector.on_request"),
        mirror=Site(_FLOW, "FlowEngine._select_work"),
        renames=(
            ("self.env.now", "self._now"),
            ("self.algorithm", "op.selector"),
            ("packet.rgid", "entry.rgid"),
            ("self.requests_handled", "op.requests_handled"),
        ),
        # The flow tier's entry always carries a valid RGID (no wire
        # parsing), and the packet rebuild has no packet to rebuild.
        drop_reference=(
            "if packet.rgid < 0: ...",
            "packet.dst = server",
            "packet.server = server",
            "packet.retaining_value = now",
            "packet.selected_at = now",
            "packet.magic = magic_transform(MAGIC_RESPONSE)",
        ),
        equivalences=(
            ("return packet", "return (op, client, rid, server, now)"),
        ),
    ),
    MirrorPair(
        name="selector.on_response",
        reference=Site(_SELECTOR_NODE, "NetRSSelector.on_response"),
        mirror=Site(_FLOW, "FlowEngine._absorb_response"),
        renames=(
            ("self.env.now", "now"),
            ("self.algorithm", "op.selector"),
            ("packet.server", "server_name"),
            ("packet.server_status", "status"),
            ("packet.retaining_value", "rv"),
            ("self.responses_handled", "op.responses_handled"),
            ("response_time", "now - rv"),
        ),
        drop_reference=(
            "if packet.server_status is None: ...",
            "response_time = self.env.now - packet.retaining_value",
        ),
        drop_mirror=(
            "now = self._now",
            "return None",
        ),
    ),
    # -- scalar flow tier <-> vectorized flow tier ---------------------
    MirrorPair(
        # The vector server reads queue depth into a local instead of the
        # scalar tier's ``queue_size`` property (same expression, hoisted
        # out of the double read); everything else is line for line.
        name="vector.server.arrival",
        reference=Site(_FLOW, "_FlowServer.handle_arrival"),
        mirror=Site(_VECTOR, "_VFlowServer.handle_arrival"),
        renames=(("self.queue_size", "queued"),),
        drop_mirror=("queued = len(self._waiting) + self._in_service",),
    ),
    MirrorPair(
        # The vector engine keeps RGIDs in a rid-indexed array instead of
        # per-request entry objects; the selector interaction is identical.
        name="vector.selector.on_request",
        reference=Site(_FLOW, "FlowEngine._select_work"),
        mirror=Site(_VECTOR, "VectorFlowEngine._select_work"),
        renames=(("entry.rgid", "self._rgid_of[rid]"),),
    ),
    # -- workload arrival loop -----------------------------------------
    MirrorPair(
        name="workload.arrival",
        reference=Site(_WORKLOAD, "OpenLoopWorkload._arrival"),
        mirror=Site(_FLOW, "FlowEngine._arrival"),
        renames=(
            ("self._rng", "self._arrival_rng"),
            ("self.key_sampler", "self._sampler"),
            ("self.warmup_requests", "self._warmup"),
            ("self.total_requests", "self._total"),
            ("self.rate", "self._rate"),
            ("self.env.call_in", "self._post"),
        ),
        drop_reference=("if self.on_finished is not None: ...",),
        equivalences=(
            (
                "if self.write_fraction and self._arrival_rng.random() < self.write_fraction:\n"
                "    self.writes_issued += 1\n"
                "    self.clients[index].issue_write(key, record=record)\n"
                "else:\n"
                "    self.clients[index].issue(key, record=record)",
                "self.clients[index].issue(key, record=record)",
            ),
        ),
    ),
)

#: Both tiers must create the same named stream families.  ``background``
#: is packet-only: the flow tier rejects background traffic outright
#: (``ensure_flow_supported``), so no stream is ever created for it.
STREAM_FAMILIES = (
    StreamFamilyContract(
        name="packet-vs-flow stream families",
        reference_paths=(_SCENARIOS,),
        mirror_paths=(_FLOW,),
        reference_only=("background",),
    ),
)

#: The arrival stream is the one *mixed-family* stream: demand-weight
#: sampling, the write-fraction check and the inter-arrival exponential
#: all draw from it, so their relative order is load-bearing.  The
#: write-fraction draw is reference-only: the flow tier is read-only and
#: ``ensure_flow_supported`` rejects ``write_fraction > 0``, so the draw
#: is never made on either side of a fidelity-checked run.
DRAW_SEQUENCES = (
    DrawSequencePair(
        name="arrival-stream draw order",
        reference=Site(_WORKLOAD, "OpenLoopWorkload._arrival"),
        mirror=Site(_FLOW, "FlowEngine._arrival"),
        reference_rng="_rng",
        mirror_rng="_arrival_rng",
        reference_only_draws=("<rng>.random",),
    ),
    # The vector tier rolls the workload forward a block at a time, but the
    # per-request draws on the shared arrival stream keep the scalar order:
    # client pick, then the inter-arrival gap.  The key draw lives on its
    # own batched stream (not an arrival-stream draw on either side).
    DrawSequencePair(
        name="vector arrival-stream draw order",
        reference=Site(_FLOW, "FlowEngine._arrival"),
        mirror=Site(_VECTOR, "VectorFlowEngine._load_chunk"),
        reference_rng="_arrival_rng",
        mirror_rng="rng",
    ),
    # Both engines open with one exponential on the arrival stream (the
    # scalar tier posts the first arrival; the vector tier seeds the block
    # cursor with the same value).
    DrawSequencePair(
        name="vector opening arrival draw",
        reference=Site(_FLOW, "FlowEngine.run"),
        mirror=Site(_VECTOR, "VectorFlowEngine.run"),
        reference_rng="_arrival_rng",
        mirror_rng="_arrival_rng",
    ),
)

CONTRACTS = ContractRegistry(
    mirror_pairs=list(MIRROR_PAIRS),
    stream_families=list(STREAM_FAMILIES),
    draw_sequences=list(DRAW_SEQUENCES),
)
