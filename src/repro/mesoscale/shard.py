"""Sharded flow-tier execution: fan one run out as independent exec jobs.

``ExperimentConfig.shards = N`` models the full system as ``N`` independent
sub-systems: shard ``s`` owns the contiguous block of clients and servers
``[s * size, (s + 1) * size)``, receives ``1/N`` of the requests (remainder
to the lowest shards) and runs as a self-contained flow experiment with its
own derived seed.  Because :meth:`ExperimentConfig.arrival_rate` scales with
``n_servers``, each shard automatically carries ``1/N`` of the aggregate
load, so per-server utilization -- the quantity the paper's latency curves
are driven by -- is unchanged.

Shards execute through :func:`repro.exec.execute_jobs` (the PR1 machinery):
serially by default, or on a spawn-safe worker pool when ``workers > 1`` /
``REPRO_SHARD_WORKERS`` is set.  Outcomes are merged in job-key order --
which embeds the shard index -- so the merged result is a pure function of
the config: byte-identical for any worker count, and (because each shard is
an ordinary flow run) identical whether shards run the scalar or the
vectorized engine.

Fault schedules shard too: logical targets (``server#i`` / ``client#i`` /
``tor(client#i)``) are remapped onto the owning shard's local index space.
Raw host names cannot be mapped and are rejected at config time.
"""

from __future__ import annotations

import os
import time
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.exec import ExecutionPolicy, Job, JobOutcome, execute_jobs, outcome_from_result
from repro.faults.events import (
    LinkDegrade,
    LinkDown,
    LinkUp,
    ServerDown,
    ServerUp,
)
from repro.faults.schedule import FaultSchedule, parse_fault_schedule

if TYPE_CHECKING:  # imported lazily: experiments builds on this package
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import ExperimentResult

#: Per-shard seeds are spread with a large prime stride so neighbouring
#: shard indices never produce overlapping SeedSequence entropy pools.
_SEED_STRIDE = 100003

#: Result fields the merge sums across shards (disjoint sub-systems).
_MERGE_SUMS = (
    "completed_requests",
    "transmissions",
    "bytes_transferred",
    "netrs_overhead_bytes",
    "events_executed",
    "micro_events",
    "redundant_requests",
    "timeouts",
    "retries",
    "requests_lost",
    "duplicates_suppressed",
    "packets_dropped",
    "server_dropped_requests",
    "faults_injected",
    "selector_requests_handled",
    "rsnode_count",
)


# ----------------------------------------------------------------------
# Fault-target remapping
# ----------------------------------------------------------------------
def _shard_of(ref: str, config: "ExperimentConfig") -> int:
    """Owning shard of one logical node reference."""
    inner = ref.strip()
    while inner.startswith("tor(") and inner.endswith(")"):
        inner = inner[4:-1].strip()
    for prefix, population in (
        ("server#", config.n_servers),
        ("client#", config.n_clients),
    ):
        if inner.startswith(prefix):
            try:
                index = int(inner[len(prefix):])
            except ValueError:
                raise ConfigurationError(
                    f"bad logical fault target {ref!r}"
                ) from None
            if not 0 <= index < population:
                raise ConfigurationError(
                    f"fault target {ref!r} out of range (0..{population - 1})"
                )
            return index // (population // config.shards)
    raise ConfigurationError(
        f"sharded runs cannot map fault target {ref!r}: use logical "
        "'server#i' / 'client#i' / 'tor(client#i)' references "
        "(raw host names bind to the unsharded topology)"
    )


def _localize(ref: str, config: "ExperimentConfig") -> str:
    """Rewrite a logical reference into the owning shard's index space."""
    ref = ref.strip()
    if ref.startswith("tor(") and ref.endswith(")"):
        return f"tor({_localize(ref[4:-1], config)})"
    for prefix, population in (
        ("server#", config.n_servers),
        ("client#", config.n_clients),
    ):
        if ref.startswith(prefix):
            index = int(ref[len(prefix):])
            return f"{prefix}{index % (population // config.shards)}"
    raise ConfigurationError(f"cannot localize fault target {ref!r}")


def split_fault_schedule(
    config: "ExperimentConfig",
) -> List[Optional[str]]:
    """Per-shard fault specs for ``config`` (None where a shard has none).

    Raises :class:`~repro.errors.ConfigurationError` for targets that do not
    shard: raw host names, and link faults whose endpoints live in
    different shards (the sub-systems share no links).
    """
    shards = config.shards
    if not config.fault_schedule:
        return [None] * shards
    per_shard: List[FaultSchedule] = [FaultSchedule() for _ in range(shards)]
    for event in parse_fault_schedule(config.fault_schedule).events:
        if isinstance(event, (ServerDown, ServerUp)):
            owner = _shard_of(event.server, config)
            per_shard[owner].add(
                type(event)(event.at, _localize(event.server, config))
            )
        elif isinstance(event, (LinkDown, LinkUp, LinkDegrade)):
            owner_a = _shard_of(event.a, config)
            owner_b = _shard_of(event.b, config)
            if owner_a != owner_b:
                raise ConfigurationError(
                    f"link fault {event.a!r}<->{event.b!r} crosses shards "
                    f"{owner_a} and {owner_b}; sharded sub-systems share no "
                    "links"
                )
            local_a = _localize(event.a, config)
            local_b = _localize(event.b, config)
            if isinstance(event, LinkDegrade):
                per_shard[owner_a].add(
                    LinkDegrade(event.at, local_a, local_b, event.factor)
                )
            else:
                per_shard[owner_a].add(type(event)(event.at, local_a, local_b))
        else:  # RSNode events: already rejected by ensure_flow_supported
            raise ConfigurationError(
                "RSNode fault events are not supported on the flow tier"
            )
    return [
        schedule.describe() if len(schedule) else None
        for schedule in per_shard
    ]


# ----------------------------------------------------------------------
# Shard enumeration
# ----------------------------------------------------------------------
def shard_configs(config: "ExperimentConfig") -> List["ExperimentConfig"]:
    """The ``config.shards`` independent sub-configs of a sharded run.

    Each sub-config has ``shards=1`` (it is an ordinary flow run), a
    deterministic derived seed, its share of the request budget, and the
    fault events owned by its node block.
    """
    shards = config.shards
    if shards <= 1:
        return [config]
    schedules = split_fault_schedule(config)
    base, remainder = divmod(config.total_requests, shards)
    subs: List["ExperimentConfig"] = []
    for index in range(shards):
        subs.append(
            config.replace(
                shards=1,
                n_servers=config.n_servers // shards,
                n_clients=config.n_clients // shards,
                total_requests=base + (1 if index < remainder else 0),
                seed=config.seed * _SEED_STRIDE + index,
                fault_schedule=schedules[index],
            )
        )
    return subs


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _run_shard_job(job: Job, service_time_scale: float = 1.0) -> JobOutcome:
    """Exec runner for one shard (module-level: spawn workers pickle it)."""
    from repro.mesoscale.runner import run_flow_experiment

    result = run_flow_experiment(
        job.config, service_time_scale=service_time_scale
    )
    outcome = outcome_from_result(job, result)
    # The merge needs the raw samples (key-ordered concat reproduces the
    # serial sample order) and every summed counter; both travel on the
    # outcome so they cross process boundaries and spool to the ledger.
    outcome.samples = list(result.latency.samples)
    counters: Dict[str, float] = {
        name: getattr(result, name) for name in _MERGE_SUMS
    }
    counters["sim_duration"] = result.sim_duration
    counters["unavailability"] = result.unavailability
    counters["accelerator_max_utilization"] = result.accelerator_max_utilization
    outcome.counters = counters
    return outcome


def merge_outcomes(
    config: "ExperimentConfig",
    outcomes: Sequence[JobOutcome],
    *,
    wall_time: float = 0.0,
) -> "ExperimentResult":
    """Fold shard outcomes (in shard order) into one standard result.

    Counters sum (the shards are disjoint sub-systems), latency samples
    concatenate in shard order, ``sim_duration`` and accelerator pressure
    take the max, downtime sums (each fault event is owned by exactly one
    shard).
    """
    from repro.experiments.runner import ExperimentResult
    from repro.sim.probes import LatencyRecorder

    recorder = LatencyRecorder()
    totals: Dict[str, float] = {name: 0 for name in _MERGE_SUMS}
    sim_duration = 0.0
    unavailability = 0.0
    accelerator_util = 0.0
    for outcome in outcomes:
        recorder.extend(outcome.samples)
        counters = outcome.counters
        for name in _MERGE_SUMS:
            totals[name] += counters.get(name, 0)
        sim_duration = max(sim_duration, counters.get("sim_duration", 0.0))
        unavailability += counters.get("unavailability", 0.0)
        accelerator_util = max(
            accelerator_util, counters.get("accelerator_max_utilization", 0.0)
        )
    result = ExperimentResult(
        config=config,
        latency=recorder,
        sim_duration=sim_duration,
        wall_time=wall_time,
        completed_requests=int(totals["completed_requests"]),
        transmissions=int(totals["transmissions"]),
        bytes_transferred=int(totals["bytes_transferred"]),
        netrs_overhead_bytes=int(totals["netrs_overhead_bytes"]),
        events_executed=int(totals["events_executed"]),
        micro_events=int(totals["micro_events"]),
        redundant_requests=int(totals["redundant_requests"]),
        timeouts=int(totals["timeouts"]),
        retries=int(totals["retries"]),
        requests_lost=int(totals["requests_lost"]),
        duplicates_suppressed=int(totals["duplicates_suppressed"]),
        packets_dropped=int(totals["packets_dropped"]),
        server_dropped_requests=int(totals["server_dropped_requests"]),
        faults_injected=int(totals["faults_injected"]),
        unavailability=unavailability,
    )
    result.selector_requests_handled = int(totals["selector_requests_handled"])
    if totals["rsnode_count"]:
        result.rsnode_count = int(totals["rsnode_count"])
        result.accelerator_max_utilization = accelerator_util
        result.plan_description = (
            f"FLOW-SHARDED[shards={config.shards} "
            f"rsnodes={result.rsnode_count} granularity=rack]"
        )
    return result


def run_sharded_flow_experiment(
    config: "ExperimentConfig",
    *,
    workers: Optional[int] = None,
    run_dir: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    service_time_scale: float = 1.0,
) -> "ExperimentResult":
    """Run a ``shards > 1`` flow config and merge the shard outcomes.

    ``workers=None`` reads ``REPRO_SHARD_WORKERS`` (default 1 = serial).
    The merged result is identical for every worker count: each shard is a
    fully seeded experiment and the merge consumes outcomes in shard order,
    never completion order.
    """
    config.validate()
    subs = shard_configs(config)
    jobs = [Job.from_config(sub, index) for index, sub in enumerate(subs)]
    if workers is None:
        workers = int(os.environ.get("REPRO_SHARD_WORKERS", "1") or "1")
    policy = ExecutionPolicy(
        workers=max(1, workers), run_dir=run_dir, resume=resume
    )
    runner = (
        partial(_run_shard_job, service_time_scale=service_time_scale)
        if service_time_scale != 1.0
        else _run_shard_job
    )
    started = time.perf_counter()  # repro: noqa(DET002) - wall time, reported only
    outcomes = execute_jobs(jobs, policy=policy, runner=runner)
    wall_time = time.perf_counter() - started  # repro: noqa(DET002) - reported only
    ordered = [outcomes[job.key] for job in jobs]
    return merge_outcomes(config, ordered, wall_time=wall_time)
