"""The C3 replica-selection algorithm (Suresh et al., NSDI 2015).

C3 is the state of the art the paper builds on: every scheme in the
evaluation (CliRS and the NetRS variants alike) runs C3 at its RSNodes.

Per candidate server ``s`` the RSNode tracks:

* ``os_s``  -- requests it sent to ``s`` that are still outstanding,
* ``R_s``   -- EWMA of observed response times,
* ``q_s``   -- EWMA of piggybacked queue sizes,
* ``mu_s``  -- EWMA of piggybacked service rates.

The *extrapolated* queue size scales local outstanding counts by the number
of concurrent RSNodes ``n`` (each of which is presumed to contribute a
similar load): ``q_hat = 1 + os_s * n + q_s``.  The replica minimizing the
cubic scoring function

    psi_s = R_s - 1/mu_s + q_hat^3 / mu_s

is selected.  The cubic exponent penalizes long queues steeply, which is what
lets C3 back off from momentarily slow servers without starving them.

The ``concurrency_weight`` is exactly where NetRS wins: with hundreds of
client RSNodes the extrapolation is coarse and feedback is sparse, while a
handful of in-network RSNodes see most of the traffic (fresh EWMAs) and herd
less.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.packet import ServerStatus
from repro.selection.base import ReplicaSelector
from repro.selection.rate_control import CubicRateLimiter


@dataclass(slots=True)
class _ServerTrack:
    outstanding: int = 0
    response_time: float = 0.0  # EWMA, seconds
    queue_size: float = 0.0  # EWMA of piggybacked queue sizes
    service_rate: float = 0.0  # EWMA of piggybacked rates, req/s
    feedback_count: int = 0
    last_feedback_at: float = -1.0
    index: int = -1  # row in the kernel mirror arrays (-1 = no mirror)


class C3Selector(ReplicaSelector):
    """Cubic replica selection with EWMA feedback tracking."""

    algorithm_name = "c3"

    def __init__(
        self,
        *,
        concurrency_weight: int = 1,
        prior_service_rate: float,
        ewma_alpha: float = 0.9,
        cubic_exponent: float = 3.0,
        rng: Optional[np.random.Generator] = None,
        rate_limiter_factory: Optional[Callable[[], CubicRateLimiter]] = None,
    ) -> None:
        super().__init__(rng=rng)
        if concurrency_weight < 1:
            raise ConfigurationError("concurrency_weight must be >= 1")
        if prior_service_rate <= 0:
            raise ConfigurationError("prior_service_rate must be positive")
        if not 0 <= ewma_alpha < 1:
            raise ConfigurationError("ewma_alpha must be in [0, 1)")
        if cubic_exponent < 1:
            raise ConfigurationError("cubic_exponent must be >= 1")
        self.concurrency_weight = concurrency_weight
        self.prior_service_rate = prior_service_rate
        self.ewma_alpha = ewma_alpha
        self.cubic_exponent = cubic_exponent
        self._rate_limiter_factory = rate_limiter_factory
        self._tracks: Dict[str, _ServerTrack] = {}
        self._limiters: Dict[str, CubicRateLimiter] = {}
        self.feedback_updates = 0
        # Compiled backend hook (see repro.sim.backend): when installed,
        # per-server EWMA state is mirrored into typed arrays and select()
        # runs the single-pass scoring kernel over a gathered pool.
        self._kernel = None
        self._mirror: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Compiled backend (repro.sim.backend)
    # ------------------------------------------------------------------
    def use_kernel(self, kernels) -> None:
        """Install a compiled backend's ``c3_select`` kernel.

        The scalar loop in :meth:`select` stays the oracle: the kernel
        mirrors it operation for operation, ties fall back to the scalar
        path (the tie-break RNG draw must consume the same stream
        position), and the byte-identity suites run both ways.
        """
        self._kernel = kernels.c3_select
        size = 16
        while size < len(self._tracks):
            size *= 2
        self._mirror = {
            "rate": np.empty(size, dtype=np.float64),
            "outstanding": np.empty(size, dtype=np.float64),
            "queue": np.empty(size, dtype=np.float64),
            "response": np.empty(size, dtype=np.float64),
        }
        for index, track in enumerate(self._tracks.values()):
            track.index = index
            self._write_mirror(track)

    def _write_mirror(self, track: _ServerTrack) -> None:
        """Copy one track's scoring fields into its mirror row."""
        mirror = self._mirror
        assert mirror is not None
        index = track.index
        if index >= len(mirror["rate"]):
            for key, old in mirror.items():
                grown = np.empty(2 * len(old), dtype=np.float64)
                grown[: len(old)] = old
                mirror[key] = grown
        mirror["rate"][index] = track.service_rate
        mirror["outstanding"][index] = float(track.outstanding)
        mirror["queue"][index] = track.queue_size
        mirror["response"][index] = track.response_time

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _track(self, server: str) -> _ServerTrack:
        track = self._tracks.get(server)
        if track is None:
            track = _ServerTrack(service_rate=self.prior_service_rate)
            self._tracks[server] = track
            if self._mirror is not None:
                track.index = len(self._tracks) - 1
                self._write_mirror(track)
        return track

    def score(self, server: str) -> float:
        """The cubic scoring function psi for one server (lower is better)."""
        # Inlined _track fast path: score runs once per candidate per
        # selection, and the track almost always exists already.
        track = self._tracks.get(server)
        if track is None:
            track = self._track(server)
        rate = track.service_rate if track.service_rate > 0 else self.prior_service_rate
        expected_service = 1.0 / rate
        q_hat = 1.0 + track.outstanding * self.concurrency_weight + track.queue_size
        return (
            track.response_time
            - expected_service
            + (q_hat**self.cubic_exponent) * expected_service
        )

    def select(self, candidates: Sequence[str], now: float) -> str:
        """Pick the candidate with the lowest cubic score."""
        if not candidates:
            raise ConfigurationError("select() needs at least one candidate")
        self.selections += 1
        pool: Sequence[str] = candidates
        if self._rate_limiter_factory is not None:
            ready = [s for s in pool if self._limiter(s).may_send(now)]
            if ready:
                pool = ready
        # Single pass: track the first minimum and collect ties lazily
        # (scoring every candidate runs once per request).  The scoring
        # formula is inlined from score() -- same operations in the same
        # order, minus one method call and repeated attribute loads per
        # candidate.  The compiled backend kernel mirrors exactly this
        # loop over array-mirrored tracks (see repro.sim.backend).
        tracks = self._tracks
        prior = self.prior_service_rate
        weight = self.concurrency_weight
        exponent = self.cubic_exponent
        kernel = self._kernel
        if kernel is not None:
            mirror = self._mirror
            count = len(pool)
            rows = np.empty(count, dtype=np.int64)
            for i, server in enumerate(pool):
                track = tracks.get(server)
                if track is None:
                    track = self._track(server)
                rows[i] = track.index
            index, ties = kernel(
                mirror["rate"][rows],
                mirror["outstanding"][rows],
                mirror["queue"][rows],
                mirror["response"][rows],
                float(prior),
                float(weight),
                float(exponent),
            )
            if ties == 1:
                return pool[index]
            # Exact ties: re-walk the scalar loop below so the winner list
            # (and the tie-break RNG draw) match the reference path.
        best: Optional[str] = None
        best_score = float("inf")
        winners = None
        for server in pool:
            track = tracks.get(server)
            if track is None:
                track = self._track(server)
            rate = track.service_rate
            if not rate > 0:
                rate = prior
            expected_service = 1.0 / rate
            q_hat = 1.0 + track.outstanding * weight + track.queue_size
            score = (
                track.response_time
                - expected_service
                + (q_hat**exponent) * expected_service
            )
            if score < best_score:
                best = server
                best_score = score
                winners = None
            elif score == best_score:
                if winners is None:
                    winners = [best]
                winners.append(server)
        if winners is None:
            return best  # type: ignore[return-value]
        return self._tie_break(winners)

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def note_sent(self, server: str, now: float) -> None:
        """Count an in-flight request toward ``server``."""
        track = self._track(server)
        track.outstanding += 1
        if self._mirror is not None:
            self._mirror["outstanding"][track.index] = float(track.outstanding)
        if self._rate_limiter_factory is not None:
            self._limiter(server).on_send(now)

    def note_response(
        self, server: str, latency: float, status: ServerStatus, now: float
    ) -> None:
        """Fold one piggybacked feedback sample into the EWMAs."""
        track = self._track(server)
        if track.outstanding > 0:
            # NetRS clients receive responses for requests they never counted
            # as sent (the RSNode did); clamp instead of going negative.
            track.outstanding -= 1
        alpha = self.ewma_alpha
        if track.feedback_count == 0:
            track.response_time = latency
            track.queue_size = float(status.queue_size)
            track.service_rate = status.service_rate
        else:
            track.response_time = alpha * track.response_time + (1 - alpha) * latency
            track.queue_size = (
                alpha * track.queue_size + (1 - alpha) * status.queue_size
            )
            track.service_rate = (
                alpha * track.service_rate + (1 - alpha) * status.service_rate
            )
        track.feedback_count += 1
        track.last_feedback_at = now
        if self._mirror is not None:
            self._write_mirror(track)
        self.feedback_updates += 1
        if self._rate_limiter_factory is not None:
            self._limiter(server).on_receive(now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outstanding(self, server: str) -> int:
        """Currently tracked in-flight requests to ``server``."""
        return self._track(server).outstanding

    def feedback_age(self, server: str, now: float) -> float:
        """Seconds since the last feedback from ``server`` (inf if never)."""
        track = self._track(server)
        if track.last_feedback_at < 0:
            return float("inf")
        return now - track.last_feedback_at

    def _limiter(self, server: str) -> CubicRateLimiter:
        limiter = self._limiters.get(server)
        if limiter is None:
            assert self._rate_limiter_factory is not None
            limiter = self._rate_limiter_factory()
            self._limiters[server] = limiter
        return limiter
