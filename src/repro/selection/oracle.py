"""Oracle selector: global knowledge of true server queues.

Not realizable in a real deployment -- it peeks at the simulated servers'
actual state -- but it bounds how much any feedback-based algorithm could
gain, which makes it a useful yardstick in the algorithm ablation.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.selection.base import ReplicaSelector

#: Returns the true instantaneous queue size of a server by name.
QueueProbe = Callable[[str], int]


class OracleSelector(ReplicaSelector):
    """Pick the replica with the smallest *true* queue right now."""

    algorithm_name = "oracle"

    def __init__(
        self, queue_probe: QueueProbe, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__(rng=rng)
        self._probe = queue_probe

    def select(self, candidates: Sequence[str], now: float) -> str:
        self._check_candidates(candidates)
        self.selections += 1
        best = min(self._probe(s) for s in candidates)
        winners = [s for s in candidates if self._probe(s) == best]
        return self._tie_break(winners)
