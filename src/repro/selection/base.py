"""Replica-selection algorithm interface.

An RSNode -- a client under CliRS, a NetRS operator's accelerator under
NetRS -- owns one :class:`ReplicaSelector` instance.  The selector sees three
things, mirroring what real RSNodes observe:

* ``select(candidates, now)`` -- choose a replica for a request,
* ``note_sent(server, now)`` -- a request actually left for ``server``,
* ``note_response(server, latency, status, now)`` -- a response arrived,
  carrying the piggybacked :class:`~repro.network.packet.ServerStatus`.

``note_sent`` is separate from ``select`` because not every selection turns
into a send (NetRS clients call ``select`` only to pick a DRS backup) and
some sends are not selections (redundant duplicates).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.packet import ServerStatus


class ReplicaSelector(abc.ABC):
    """Base class for replica-selection algorithms."""

    #: Registry key; subclasses override.
    algorithm_name = "abstract"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng
        self.selections = 0

    @abc.abstractmethod
    def select(self, candidates: Sequence[str], now: float) -> str:
        """Pick one replica out of ``candidates`` for a fresh request."""

    def note_sent(self, server: str, now: float) -> None:
        """A request was dispatched to ``server``."""

    def note_response(
        self, server: str, latency: float, status: ServerStatus, now: float
    ) -> None:
        """A response from ``server`` arrived after ``latency`` seconds."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _check_candidates(self, candidates: Sequence[str]) -> None:
        if not candidates:
            raise ConfigurationError("select() needs at least one candidate")

    def _tie_break(self, winners: Sequence[str]) -> str:
        """Choose among equally scored candidates, randomly if possible."""
        if len(winners) == 1 or self._rng is None:
            return winners[0]
        return winners[int(self._rng.integers(len(winners)))]
