"""Factory registry mapping algorithm names to selector builders.

The experiment harness and CLI select algorithms by name; NetRS itself is
algorithm-agnostic ("NetRS could support diverse algorithms of replica
selection"), so anything registered here can run at any RSNode.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.selection.base import ReplicaSelector
from repro.sim.rng import stream_from_seed
from repro.selection.c3 import C3Selector
from repro.selection.ewma_snitch import EwmaSnitchSelector
from repro.selection.simple import (
    LeastOutstandingSelector,
    RandomSelector,
    RoundRobinSelector,
    TwoChoicesSelector,
)

#: A builder receives the RSNode count, a prior service rate and an rng.
SelectorFactory = Callable[[int, float, np.random.Generator], ReplicaSelector]

_REGISTRY: Dict[str, SelectorFactory] = {}


def register(name: str, factory: SelectorFactory) -> None:
    """Register a selector factory under ``name``."""
    if name in _REGISTRY:
        raise ConfigurationError(f"selector {name!r} already registered")
    _REGISTRY[name] = factory


def available_algorithms() -> tuple:
    """Names of all registered algorithms."""
    return tuple(sorted(_REGISTRY))


def create_selector(
    name: str,
    *,
    concurrency_weight: int,
    prior_service_rate: float,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> ReplicaSelector:
    """Instantiate the algorithm ``name`` for one RSNode.

    When the caller passes no ``rng``, the fallback stream is derived
    deterministically from ``seed`` through :mod:`repro.sim.rng` -- never
    from fresh entropy -- so standalone selectors reproduce like the full
    harness does.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown selection algorithm {name!r}; "
            f"available: {', '.join(available_algorithms())}"
        )
    if rng is None:
        rng = stream_from_seed(seed, f"selector.{name}")
    return factory(concurrency_weight, prior_service_rate, rng)


def _c3_with_rate_control(
    n: int, prior: float, rng: np.random.Generator
) -> C3Selector:
    """C3 with its cubic backpressure enabled (C3 paper section 3.2).

    Each (RSNode, server) limiter starts at the server's prior service rate;
    decreases/growth then track the observed receive rate.
    """
    from repro.selection.rate_control import CubicRateLimiter

    return C3Selector(
        concurrency_weight=n,
        prior_service_rate=prior,
        rng=rng,
        rate_limiter_factory=lambda: CubicRateLimiter(initial_rate=prior),
    )


register(
    "c3",
    lambda n, prior, rng: C3Selector(
        concurrency_weight=n, prior_service_rate=prior, rng=rng
    ),
)
register("c3-rate", _c3_with_rate_control)
register("random", lambda n, prior, rng: RandomSelector(rng=rng))
register("round-robin", lambda n, prior, rng: RoundRobinSelector())
register("least-outstanding", lambda n, prior, rng: LeastOutstandingSelector(rng=rng))
register("two-choices", lambda n, prior, rng: TwoChoicesSelector(rng=rng))
register("ewma-snitch", lambda n, prior, rng: EwmaSnitchSelector(rng=rng))
