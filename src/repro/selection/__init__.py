"""Replica-selection algorithms.

C3 (the paper's RSNode algorithm) plus classic baselines, all behind the
:class:`~repro.selection.base.ReplicaSelector` interface so any of them can
run at any RSNode -- a client under CliRS or a network accelerator under
NetRS.
"""

from repro.selection.base import ReplicaSelector
from repro.selection.c3 import C3Selector
from repro.selection.ewma_snitch import EwmaSnitchSelector
from repro.selection.oracle import OracleSelector
from repro.selection.rate_control import CubicRateLimiter
from repro.selection.registry import (
    available_algorithms,
    create_selector,
    register,
)
from repro.selection.simple import (
    LeastOutstandingSelector,
    RandomSelector,
    RoundRobinSelector,
    TwoChoicesSelector,
)

__all__ = [
    "C3Selector",
    "CubicRateLimiter",
    "EwmaSnitchSelector",
    "LeastOutstandingSelector",
    "OracleSelector",
    "RandomSelector",
    "ReplicaSelector",
    "RoundRobinSelector",
    "TwoChoicesSelector",
    "available_algorithms",
    "create_selector",
    "register",
]
