"""Cubic rate control, the backpressure half of C3.

C3 pairs its replica ranking with *distributed rate control*: each RSNode
adapts a per-server sending-rate cap using a CUBIC-style growth function, so
senders collectively avoid overwhelming a server that ranking alone would
pile onto.  The NetRS evaluation exercises the ranking half; we provide rate
control as an optional component (off by default, matching the paper's
setup) and benchmark its effect separately.

Mechanics (following C3 section 3.2):

* The limiter tracks the *receive rate* ``rrate`` as responses arrive, over
  a sliding window.
* When the send rate is below what the server demonstrably sustains, the cap
  grows along a cubic curve anchored at the last decrease point.
* When sends outpace receives, the cap is cut multiplicatively and the cubic
  anchor is reset (like TCP CUBIC's ``W_max``).
* ``may_send`` enforces the cap with token-bucket semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import ConfigurationError


class CubicRateLimiter:
    """Per-(RSNode, server) sending-rate cap with cubic growth."""

    def __init__(
        self,
        *,
        initial_rate: float = 1000.0,
        beta: float = 0.2,
        scaling_constant: float = 0.000004,
        smoothing: float = 0.8,
        window: float = 0.1,
        max_rate: float = 1e7,
    ) -> None:
        if initial_rate <= 0:
            raise ConfigurationError("initial_rate must be positive")
        if not 0 < beta < 1:
            raise ConfigurationError("beta must be in (0, 1)")
        if scaling_constant <= 0:
            raise ConfigurationError("scaling_constant must be positive")
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.rate = initial_rate
        self.beta = beta
        self.scaling_constant = scaling_constant
        self.smoothing = smoothing
        self.window = window
        self.max_rate = max_rate
        self._rate_at_decrease = initial_rate
        self._decrease_time = 0.0
        self._tokens = 1.0
        self._last_refill = 0.0
        self._send_times: Deque[float] = deque()
        self._receive_times: Deque[float] = deque()
        self.decreases = 0

    # ------------------------------------------------------------------
    # Rate measurement
    # ------------------------------------------------------------------
    def _trim(self, times: Deque[float], now: float) -> None:
        horizon = now - self.window
        while times and times[0] < horizon:
            times.popleft()

    def send_rate(self, now: float) -> float:
        """Requests per second sent within the sliding window."""
        self._trim(self._send_times, now)
        return len(self._send_times) / self.window

    def receive_rate(self, now: float) -> float:
        """Responses per second received within the sliding window."""
        self._trim(self._receive_times, now)
        return len(self._receive_times) / self.window

    # ------------------------------------------------------------------
    # Cap adaptation
    # ------------------------------------------------------------------
    def _cubic_target(self, now: float) -> float:
        # Standard CUBIC: W(t) = C (t - K)^3 + W_max with K chosen so the
        # curve passes through the post-decrease rate at t = 0.
        w_max = self._rate_at_decrease
        k = ((w_max * self.beta) / self.scaling_constant) ** (1.0 / 3.0)
        t = now - self._decrease_time
        return self.scaling_constant * (t - k) ** 3 + w_max

    def on_send(self, now: float) -> None:
        """Record one send and consume a token."""
        self._refill(now)
        self._send_times.append(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0

    def on_receive(self, now: float) -> None:
        """Record one receive and adapt the cap."""
        self._receive_times.append(now)
        srate = self.send_rate(now)
        rrate = self.receive_rate(now)
        if srate > rrate * (1.0 + 1e-9) and srate > 0:
            # Sending faster than the server returns: multiplicative decrease.
            self._rate_at_decrease = self.rate
            self._decrease_time = now
            self.rate = max(1.0, self.rate * (1.0 - self.beta))
            self.decreases += 1
        else:
            target = self._cubic_target(now)
            smoothed = self.smoothing * self.rate + (1 - self.smoothing) * target
            self.rate = min(self.max_rate, max(self.rate, smoothed))

    # ------------------------------------------------------------------
    # Gate
    # ------------------------------------------------------------------
    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(2.0, self._tokens + elapsed * self.rate)
            self._last_refill = now

    def may_send(self, now: float) -> bool:
        """Whether the cap currently allows one more request."""
        self._refill(now)
        return self._tokens >= 1.0
