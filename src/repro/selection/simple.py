"""Baseline replica-selection algorithms.

These are the classic strategies NetRS supports besides C3 ("NetRS could
support diverse algorithms of replica selection"): random, round-robin,
least-outstanding-requests, and Mitzenmacher's power-of-two-choices.  They
double as baselines in the algorithm-ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.packet import ServerStatus
from repro.selection.base import ReplicaSelector


class RandomSelector(ReplicaSelector):
    """Uniformly random choice among the candidates."""

    algorithm_name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__(rng=rng)
        if rng is None:
            raise ConfigurationError("RandomSelector requires an rng")

    def select(self, candidates: Sequence[str], now: float) -> str:
        self._check_candidates(candidates)
        self.selections += 1
        assert self._rng is not None
        return candidates[int(self._rng.integers(len(candidates)))]


class RoundRobinSelector(ReplicaSelector):
    """Cycle through candidates in order (per selector instance)."""

    algorithm_name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def select(self, candidates: Sequence[str], now: float) -> str:
        self._check_candidates(candidates)
        self.selections += 1
        choice = candidates[self._next % len(candidates)]
        self._next += 1
        return choice


class LeastOutstandingSelector(ReplicaSelector):
    """Send to the candidate with the fewest locally outstanding requests."""

    algorithm_name = "least-outstanding"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng=rng)
        self._outstanding: Dict[str, int] = {}

    def select(self, candidates: Sequence[str], now: float) -> str:
        self._check_candidates(candidates)
        self.selections += 1
        best = min(self._outstanding.get(s, 0) for s in candidates)
        winners = [s for s in candidates if self._outstanding.get(s, 0) == best]
        return self._tie_break(winners)

    def note_sent(self, server: str, now: float) -> None:
        self._outstanding[server] = self._outstanding.get(server, 0) + 1

    def note_response(
        self, server: str, latency: float, status: ServerStatus, now: float
    ) -> None:
        current = self._outstanding.get(server, 0)
        if current > 0:
            self._outstanding[server] = current - 1


class TwoChoicesSelector(ReplicaSelector):
    """Mitzenmacher's power of two choices over piggybacked queue sizes.

    Samples two random candidates and picks the one whose last piggybacked
    queue size was smaller (falling back to outstanding counts before any
    feedback arrives).
    """

    algorithm_name = "two-choices"

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__(rng=rng)
        if rng is None:
            raise ConfigurationError("TwoChoicesSelector requires an rng")
        self._queue_sizes: Dict[str, float] = {}
        self._outstanding: Dict[str, int] = {}

    def _load(self, server: str) -> float:
        return self._queue_sizes.get(server, 0.0) + self._outstanding.get(server, 0)

    def select(self, candidates: Sequence[str], now: float) -> str:
        self._check_candidates(candidates)
        self.selections += 1
        assert self._rng is not None
        if len(candidates) == 1:
            return candidates[0]
        i, j = self._rng.choice(len(candidates), size=2, replace=False)
        first, second = candidates[int(i)], candidates[int(j)]
        if self._load(first) <= self._load(second):
            return first
        return second

    def note_sent(self, server: str, now: float) -> None:
        self._outstanding[server] = self._outstanding.get(server, 0) + 1

    def note_response(
        self, server: str, latency: float, status: ServerStatus, now: float
    ) -> None:
        current = self._outstanding.get(server, 0)
        if current > 0:
            self._outstanding[server] = current - 1
        self._queue_sizes[server] = float(status.queue_size)
