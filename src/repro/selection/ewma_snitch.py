"""Dynamic-Snitching-like selector (Cassandra's default strategy).

Cassandra's dynamic snitch scores replicas by an exponentially decaying
average of observed read latencies and routes to the lowest-scoring one,
periodically *resetting* scores so that a slow replica gets retried.  This
is the classic latency-history baseline the paper contrasts with C3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.packet import ServerStatus
from repro.selection.base import ReplicaSelector


@dataclass(slots=True)
class _LatencyTrack:
    ewma: float = 0.0
    samples: int = 0


class EwmaSnitchSelector(ReplicaSelector):
    """Latency-EWMA ranking with periodic score reset."""

    algorithm_name = "ewma-snitch"

    def __init__(
        self,
        *,
        ewma_alpha: float = 0.75,
        reset_interval: float = 10.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng=rng)
        if not 0 <= ewma_alpha < 1:
            raise ConfigurationError("ewma_alpha must be in [0, 1)")
        if reset_interval <= 0:
            raise ConfigurationError("reset_interval must be positive")
        self.ewma_alpha = ewma_alpha
        self.reset_interval = reset_interval
        self._tracks: Dict[str, _LatencyTrack] = {}
        self._last_reset = 0.0

    def select(self, candidates: Sequence[str], now: float) -> str:
        self._check_candidates(candidates)
        self.selections += 1
        if now - self._last_reset >= self.reset_interval:
            self._tracks.clear()
            self._last_reset = now
        # Unseen replicas score 0, so they are explored first.
        best = min(self._score(s) for s in candidates)
        winners = [s for s in candidates if self._score(s) == best]
        return self._tie_break(winners)

    def _score(self, server: str) -> float:
        track = self._tracks.get(server)
        return track.ewma if track is not None else 0.0

    def note_response(
        self, server: str, latency: float, status: ServerStatus, now: float
    ) -> None:
        track = self._tracks.get(server)
        if track is None:
            track = _LatencyTrack()
            self._tracks[server] = track
        if track.samples == 0:
            track.ewma = latency
        else:
            track.ewma = (
                self.ewma_alpha * track.ewma + (1 - self.ewma_alpha) * latency
            )
        track.samples += 1
