"""The fault injector: replay a :class:`FaultSchedule` against a scenario.

The injector composes with the event engine rather than wrapping it: each
scheduled fault becomes one ordinary ``env.call_at`` callback, so injection
interleaves deterministically with workload traffic (the engine breaks time
ties by insertion order) and a run with a schedule is exactly as
reproducible as one without.

Construction resolves every symbolic target (``server#i``, ``client#i``,
``tor(...)``, operator ``busiest``) against the built scenario immediately,
so a typo in a schedule fails fast with a
:class:`~repro.errors.ConfigurationError` instead of mid-run.

Besides applying faults, the injector is the bookkeeper for the
failure-aware metrics: it counts injected events and integrates per-target
unavailability windows (time a server or link spent down), which
``run_experiment`` surfaces on the result (see ``docs/FAULTS.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.faults.events import (
    FaultEvent,
    LinkDegrade,
    LinkDown,
    LinkUp,
    NodeJoin,
    NodeLeave,
    RSNodeDown,
    RSNodeUp,
    ServerDown,
    ServerUp,
)
from repro.faults.schedule import FaultSchedule

if TYPE_CHECKING:  # structural deps only; avoids import cycles
    from repro.core.controller import NetRSController
    from repro.kvstore.server import KVServer
    from repro.network.fabric import Network
    from repro.sim.core import Environment


class FaultInjector:
    """Arms a schedule's events on the simulation clock and applies them."""

    __slots__ = (
        "env",
        "schedule",
        "network",
        "servers",
        "server_hosts",
        "client_hosts",
        "controller",
        "_resolved",
        "_armed",
        "churn",
        "_down_since",
        "_closed_downtime",
        "faults_injected",
        "churn_applied",
    )

    def __init__(
        self,
        env: "Environment",
        schedule: FaultSchedule,
        *,
        network: "Network",
        servers: Dict[str, "KVServer"],
        server_hosts: Sequence[str] = (),
        client_hosts: Sequence[str] = (),
        controller: Optional["NetRSController"] = None,
        churn=None,
    ) -> None:
        self.env = env
        self.schedule = schedule
        self.network = network
        self.servers = servers
        self.server_hosts = tuple(server_hosts)
        self.client_hosts = tuple(client_hosts)
        self.controller = controller
        self.churn = churn
        # target key ("server:x" / "link:a/b" / "rsnode:i") -> went down at
        self._down_since: Dict[str, float] = {}
        self._closed_downtime = 0.0
        self.faults_injected = 0
        self.churn_applied = 0
        self._armed = False
        self._resolved: List[FaultEvent] = [
            self._resolve(event) for event in schedule.events
        ]
        if self.churn is not None:
            # Static replay: leave-of-inactive, join-of-active, and ring
            # underflow (active < replication_factor) fail at build time.
            self.churn.preflight(
                event
                for event in self._resolved
                if isinstance(event, (NodeJoin, NodeLeave))
            )

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _resolve(self, event: FaultEvent) -> FaultEvent:
        if isinstance(event, (ServerDown, ServerUp, NodeJoin, NodeLeave)):
            name = self._resolve_node(event.server)
            if name not in self.servers:
                raise ConfigurationError(
                    f"fault target {event.server!r} resolves to {name!r}, "
                    f"which runs no key-value server"
                )
            if isinstance(event, (NodeJoin, NodeLeave)) and self.churn is None:
                raise ConfigurationError(
                    "node-join/node-leave events need a churn coordinator; "
                    "set churn_schedule (not fault_schedule) so the scenario "
                    "builds one -- see docs/CONSISTENCY.md"
                )
            return type(event)(event.at, name)
        if isinstance(event, LinkDegrade):
            return LinkDegrade(
                event.at,
                self._resolve_node(event.a),
                self._resolve_node(event.b),
                event.factor,
            )
        if isinstance(event, (LinkDown, LinkUp)):
            return type(event)(
                event.at, self._resolve_node(event.a), self._resolve_node(event.b)
            )
        # RSNode events
        return type(event)(event.at, self._resolve_operator(event.operator))

    def _resolve_node(self, ref: str) -> str:
        """Turn a symbolic node reference into a literal topology name."""
        ref = ref.strip()
        if ref.startswith("tor(") and ref.endswith(")"):
            inner = self._resolve_node(ref[4:-1])
            return self.network.router.tor_of(inner)
        for prefix, pool in (
            ("server#", self.server_hosts),
            ("client#", self.client_hosts),
        ):
            if ref.startswith(prefix):
                index_text = ref[len(prefix):]
                try:
                    index = int(index_text)
                except ValueError:
                    raise ConfigurationError(
                        f"bad fault target index in {ref!r}"
                    ) from None
                if not 0 <= index < len(pool):
                    raise ConfigurationError(
                        f"fault target {ref!r} out of range "
                        f"(have {len(pool)} such hosts)"
                    )
                return pool[index]
        if ref not in self.network.topology.nodes:
            raise ConfigurationError(
                f"fault target {ref!r} is not a topology node (use a literal "
                f"name, 'server#i', 'client#i', or 'tor(...)')"
            )
        return ref

    def _resolve_operator(self, ref: Union[int, str]) -> int:
        if self.controller is None:
            raise ConfigurationError(
                "rsnode faults need a NetRS scheme (no controller in this "
                "scenario)"
            )
        if ref == "busiest":
            plan = self.controller.current_plan
            if plan is None or not plan.rsnode_ids:
                raise ConfigurationError(
                    "cannot resolve 'busiest': no plan is deployed"
                )
            return max(
                sorted(plan.rsnode_ids),
                key=lambda oid: len(plan.groups_of(oid)),
            )
        operator_id = int(ref)
        if operator_id not in self.controller.operators:
            raise ConfigurationError(f"unknown operator {operator_id}")
        return operator_id

    # ------------------------------------------------------------------
    # Arming & applying
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every event on the simulation clock (idempotent)."""
        if self._armed:
            return
        self._armed = True
        for event in self._resolved:
            self.env.call_at(event.at, self._apply, event)

    def _apply(self, event: FaultEvent) -> None:
        now = self.env.now
        if isinstance(event, (NodeJoin, NodeLeave)):
            # Graceful churn: counted separately from faults and exempt
            # from unavailability windows (the host never goes dark).
            self.churn_applied += 1
            if isinstance(event, NodeLeave):
                self.churn.leave(event.server)
            else:
                self.churn.join(event.server)
            return
        self.faults_injected += 1
        if isinstance(event, ServerDown):
            server = self.servers[event.server]
            if not server.down:
                server.fail()
                self._open_window(f"server:{event.server}", now)
        elif isinstance(event, ServerUp):
            server = self.servers[event.server]
            if server.down:
                server.recover()
                self._close_window(f"server:{event.server}", now)
        elif isinstance(event, LinkDown):
            self.network.fail_link(event.a, event.b)
            self._open_window(self._link_key(event.a, event.b), now)
        elif isinstance(event, LinkUp):
            self.network.restore_link(event.a, event.b)
            self._close_window(self._link_key(event.a, event.b), now)
        elif isinstance(event, LinkDegrade):
            self.network.degrade_link(event.a, event.b, event.factor)
        elif isinstance(event, RSNodeDown):
            assert self.controller is not None
            self.controller.handle_operator_failure(event.operator)
            self._open_window(f"rsnode:{event.operator}", now)
        else:  # RSNodeUp
            assert self.controller is not None
            self.controller.recover_operator(event.operator)
            self._close_window(f"rsnode:{event.operator}", now)

    # ------------------------------------------------------------------
    # Unavailability accounting
    # ------------------------------------------------------------------
    @staticmethod
    def _link_key(a: str, b: str) -> str:
        lo, hi = (a, b) if a <= b else (b, a)
        return f"link:{lo}/{hi}"

    def _open_window(self, key: str, now: float) -> None:
        self._down_since.setdefault(key, now)

    def _close_window(self, key: str, now: float) -> None:
        started = self._down_since.pop(key, None)
        if started is not None:
            self._closed_downtime += now - started

    def unavailability(self, now: Optional[float] = None) -> float:
        """Total target-seconds of downtime, including still-open windows.

        Summed over all targets: two servers down for 50 ms each count
        0.1 s.  ``now`` defaults to the current simulation time.
        """
        if now is None:
            now = self.env.now
        open_windows = sum(now - started for started in self._down_since.values())
        return self._closed_downtime + open_windows

    def open_faults(self) -> Tuple[str, ...]:
        """Targets currently down, in deterministic (sorted) order."""
        return tuple(sorted(self._down_since))
