"""Fault schedules: ordered, deterministic timelines of fault events.

A :class:`FaultSchedule` is built three ways:

* **programmatically** -- chain the builder methods::

      schedule = (
          FaultSchedule()
          .server_down(0.05, "server#0")
          .server_up(0.10, "server#0")
      )

* **from a spec string** (the ``ExperimentConfig.fault_schedule`` knob and
  the CLI's ``--faults`` flag)::

      server-down@0.05:server#0; server-up@0.10:server#0

  Grammar: events separated by ``;``, each ``kind@time:target``.  Kinds are
  ``server-down``, ``server-up``, ``link-down``, ``link-up``,
  ``link-degrade``, ``rsnode-down``, ``rsnode-up``, plus the graceful-churn
  kinds ``node-join`` / ``node-leave`` (legal only in the separate
  ``churn_schedule`` knob; see ``docs/CONSISTENCY.md``).  Link targets name both
  endpoints as ``a/b`` (``link-degrade`` appends ``*factor``); RSNode
  targets are an operator ID or ``busiest``.  Whitespace around tokens is
  ignored.

* **randomly but reproducibly** -- :meth:`FaultSchedule.random_server_crashes`
  draws crash times and victims from a named ``repro.sim.rng`` stream, so a
  "random" fault workload is still a pure function of the experiment seed.

Events are replayed in ``(time, insertion order)`` order, which keeps
injection deterministic even when several faults share a timestamp.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.faults.events import (
    CHURN_EVENT_TYPES,
    FaultEvent,
    LinkDegrade,
    LinkDown,
    LinkUp,
    NodeJoin,
    NodeLeave,
    RSNodeDown,
    RSNodeUp,
    ServerDown,
    ServerUp,
)

#: Spec keyword -> event class, for the parser and ``describe``.
_KINDS = {
    "server-down": ServerDown,
    "server-up": ServerUp,
    "link-down": LinkDown,
    "link-up": LinkUp,
    "link-degrade": LinkDegrade,
    "rsnode-down": RSNodeDown,
    "rsnode-up": RSNodeUp,
    "node-join": NodeJoin,
    "node-leave": NodeLeave,
}
_KIND_NAMES = {cls: name for name, cls in _KINDS.items()}


class FaultSchedule:
    """An ordered collection of :class:`~repro.faults.events.FaultEvent`."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = list(events)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """Events in replay order: by time, insertion order breaking ties."""
        order = sorted(range(len(self._events)), key=lambda i: (self._events[i].at, i))
        return tuple(self._events[i] for i in order)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events)

    def requires_timeouts(self) -> bool:
        """Whether this schedule can strand in-flight requests.

        Server crashes and link cuts silently swallow packets, so a run
        injecting them needs client request timeouts to terminate; pure
        degradation and RSNode failures do not (DRS keeps serving).
        """
        return any(
            isinstance(event, (ServerDown, LinkDown)) for event in self._events
        )

    def churn_events(self) -> Tuple[FaultEvent, ...]:
        """The graceful node-join/node-leave subset, in replay order.

        Churn is graceful (no packets are lost), so it never factors into
        :meth:`requires_timeouts`; config validation uses this to keep the
        churn axis out of ``fault_schedule`` and vice versa.
        """
        return tuple(
            event
            for event in self.events
            if isinstance(event, CHURN_EVENT_TYPES)
        )

    def describe(self) -> str:
        """The canonical spec string for this schedule (parser-compatible)."""
        parts = []
        for event in self.events:
            kind = _KIND_NAMES[type(event)]
            if isinstance(event, (ServerDown, ServerUp, NodeJoin, NodeLeave)):
                target = event.server
            elif isinstance(event, LinkDegrade):
                target = f"{event.a}/{event.b}*{event.factor:g}"
            elif isinstance(event, (LinkDown, LinkUp)):
                target = f"{event.a}/{event.b}"
            else:
                target = str(event.operator)
            parts.append(f"{kind}@{event.at:g}:{target}")
        return ";".join(parts)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append one event; returns ``self`` for chaining."""
        self._events.append(event)
        return self

    def server_down(self, at: float, server: str) -> "FaultSchedule":
        return self.add(ServerDown(at, server))

    def server_up(self, at: float, server: str) -> "FaultSchedule":
        return self.add(ServerUp(at, server))

    def link_down(self, at: float, a: str, b: str) -> "FaultSchedule":
        return self.add(LinkDown(at, a, b))

    def link_up(self, at: float, a: str, b: str) -> "FaultSchedule":
        return self.add(LinkUp(at, a, b))

    def link_degrade(
        self, at: float, a: str, b: str, factor: float
    ) -> "FaultSchedule":
        return self.add(LinkDegrade(at, a, b, factor))

    def rsnode_down(self, at: float, operator: Union[int, str]) -> "FaultSchedule":
        return self.add(RSNodeDown(at, operator))

    def rsnode_up(self, at: float, operator: Union[int, str]) -> "FaultSchedule":
        return self.add(RSNodeUp(at, operator))

    def node_join(self, at: float, server: str) -> "FaultSchedule":
        return self.add(NodeJoin(at, server))

    def node_leave(self, at: float, server: str) -> "FaultSchedule":
        return self.add(NodeLeave(at, server))

    @classmethod
    def from_spec(cls, spec: str) -> "FaultSchedule":
        """Parse a spec string (see module docstring for the grammar)."""
        return parse_fault_schedule(spec)

    @classmethod
    def random_server_crashes(
        cls,
        rng,
        *,
        servers: Sequence[str],
        count: int,
        window: Tuple[float, float],
        downtime: float,
        seed_note: str = "faults",
    ) -> "FaultSchedule":
        """``count`` crash-and-recover pairs at seeded-random times/victims.

        ``rng`` must be a raw named stream (e.g. ``registry.stream("faults")``
        -- it interleaves ``random`` and ``integers`` draws, so a batched
        stream would raise); ``window`` bounds the crash start times;
        ``downtime`` is how long each victim stays down.  The resulting
        schedule is a pure function of the stream's seed, keeping "random"
        fault workloads byte-reproducible.  ``seed_note`` only documents
        which stream name the caller used.
        """
        if not servers:
            raise ConfigurationError("random_server_crashes needs servers")
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        lo, hi = window
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"bad crash window {window!r}")
        if downtime <= 0:
            raise ConfigurationError("downtime must be positive")
        del seed_note  # documentation-only
        schedule = cls()
        for _ in range(count):
            start = lo + float(rng.random()) * (hi - lo)
            victim = servers[int(rng.integers(len(servers)))]
            schedule.server_down(start, victim)
            schedule.server_up(start + downtime, victim)
        return schedule


def _parse_float(text: str, what: str, clause: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"bad {what} {text!r} in fault clause {clause!r}"
        ) from None


def _parse_link(target: str, clause: str) -> Tuple[str, str]:
    a, sep, b = target.partition("/")
    a, b = a.strip(), b.strip()
    if not sep or not a or not b:
        raise ConfigurationError(
            f"link fault target must be 'a/b', got {target!r} in {clause!r}"
        )
    return a, b


def _parse_operator(target: str) -> Union[int, str]:
    if target == "busiest":
        return target
    try:
        return int(target)
    except ValueError:
        raise ConfigurationError(
            f"rsnode fault target must be an operator ID or 'busiest', "
            f"got {target!r}"
        ) from None


def parse_fault_schedule(spec: str) -> FaultSchedule:
    """Parse ``kind@time:target;...`` into a :class:`FaultSchedule`.

    Raises :class:`~repro.errors.ConfigurationError` on any malformed
    clause, naming the clause so config typos are easy to find.
    """
    schedule = FaultSchedule()
    for raw_clause in spec.split(";"):
        clause = raw_clause.strip()
        if not clause:
            continue
        head, colon, target = clause.partition(":")
        target = target.strip()
        kind_name, at_sign, time_text = head.partition("@")
        kind_name = kind_name.strip()
        if not colon or not at_sign or not target:
            raise ConfigurationError(
                f"fault clause must look like 'kind@time:target', "
                f"got {clause!r}"
            )
        event_cls = _KINDS.get(kind_name)
        if event_cls is None:
            raise ConfigurationError(
                f"unknown fault kind {kind_name!r} in {clause!r}; "
                f"choose from {sorted(_KINDS)}"
            )
        at = _parse_float(time_text.strip(), "time", clause)
        if event_cls in (ServerDown, ServerUp, NodeJoin, NodeLeave):
            schedule.add(event_cls(at, target))
        elif event_cls is LinkDegrade:
            link_text, star, factor_text = target.partition("*")
            if not star:
                raise ConfigurationError(
                    f"link-degrade target must be 'a/b*factor', got "
                    f"{target!r} in {clause!r}"
                )
            a, b = _parse_link(link_text.strip(), clause)
            factor = _parse_float(factor_text.strip(), "factor", clause)
            schedule.add(LinkDegrade(at, a, b, factor))
        elif event_cls in (LinkDown, LinkUp):
            a, b = _parse_link(target, clause)
            schedule.add(event_cls(at, a, b))
        else:  # RSNodeDown / RSNodeUp
            schedule.add(event_cls(at, _parse_operator(target)))
    if not len(schedule):
        raise ConfigurationError(f"fault schedule {spec!r} contains no events")
    return schedule
