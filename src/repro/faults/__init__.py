"""Deterministic fault injection: crash servers, cut links, fail RSNodes.

A :class:`FaultSchedule` is a timeline of fault events (built
programmatically, parsed from the ``fault_schedule`` config spec, or drawn
reproducibly from a named RNG stream); a :class:`FaultInjector` replays it
against a built scenario through ordinary engine callbacks, so faulty runs
stay byte-reproducible per seed.  The failure model -- event taxonomy,
schedule grammar, client retry/timeout semantics, failover paths,
determinism guarantees and the failure-aware metrics -- is documented in
``docs/FAULTS.md``.

The same machinery replays *graceful membership churn* (:class:`NodeJoin` /
:class:`NodeLeave`, configured via the separate ``churn_schedule`` knob):
churn events resolve symbolic targets and arm on the engine clock exactly
like faults, but dispatch to a ring/migration coordinator instead of
crashing anything -- see ``docs/CONSISTENCY.md``.
"""

from repro.faults.events import (
    FaultEvent,
    LinkDegrade,
    LinkDown,
    LinkUp,
    NodeJoin,
    NodeLeave,
    RSNodeDown,
    RSNodeUp,
    ServerDown,
    ServerUp,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, parse_fault_schedule

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkDegrade",
    "LinkDown",
    "LinkUp",
    "NodeJoin",
    "NodeLeave",
    "RSNodeDown",
    "RSNodeUp",
    "ServerDown",
    "ServerUp",
    "parse_fault_schedule",
]
