"""Fault event taxonomy: the things a :class:`FaultSchedule` can inject.

Each event is a frozen dataclass carrying its injection time (``at``,
simulated seconds from the start of the run) plus the target of the fault.
Targets may be literal topology node names or the symbolic references
resolved by :class:`repro.faults.injector.FaultInjector` (``server#i``,
``client#i``, ``tor(...)``) -- symbolic references exist because role
placement is seeded-random, so a config written before the run cannot know
the literal host names.

The taxonomy (see ``docs/FAULTS.md`` for the failure model):

* :class:`ServerDown` / :class:`ServerUp` -- crash-stop a key-value server
  and bring it back.  A crashed server loses its queue and every request in
  service; arriving requests are dropped.
* :class:`LinkDown` / :class:`LinkUp` -- cut a single physical link.  The
  fabric drops packets on the dead link and the router invalidates cached
  paths and ECMP-reroutes around it.
* :class:`LinkDegrade` -- multiply a link's per-hop delay (brown-out rather
  than black-out); cleared by :class:`LinkUp`.
* :class:`RSNodeDown` / :class:`RSNodeUp` -- fail a NetRS operator
  (switch + accelerator).  The controller flips its traffic groups to
  Degraded Replica Selection, so requests fall back to the client-chosen
  backup replica -- the paper's section III-C failover story.
* :class:`NodeJoin` / :class:`NodeLeave` -- **graceful membership churn**
  on the consistent-hash ring (see ``docs/CONSISTENCY.md``).  Unlike the
  crash-stop events above, the host stays up and reachable: the ring's
  active set changes, ownership diffs are computed, and key-range
  migration transfers flow through the fabric.  Churn events live in
  ``churn_schedule`` (never ``fault_schedule``) and do not open
  unavailability windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ConfigurationError


def _check_time(at: float) -> None:
    if not at >= 0:
        raise ConfigurationError(
            f"fault event time must be >= 0 seconds, got {at!r}"
        )


@dataclass(frozen=True)
class ServerDown:
    """Crash-stop a key-value server at time ``at``."""

    at: float
    server: str

    def __post_init__(self) -> None:
        _check_time(self.at)


@dataclass(frozen=True)
class ServerUp:
    """Recover a previously crashed server (empty queue, state intact)."""

    at: float
    server: str

    def __post_init__(self) -> None:
        _check_time(self.at)


@dataclass(frozen=True)
class LinkDown:
    """Cut the direct link between two adjacent nodes."""

    at: float
    a: str
    b: str

    def __post_init__(self) -> None:
        _check_time(self.at)


@dataclass(frozen=True)
class LinkUp:
    """Restore a cut or degraded link to its nominal latency."""

    at: float
    a: str
    b: str

    def __post_init__(self) -> None:
        _check_time(self.at)


@dataclass(frozen=True)
class LinkDegrade:
    """Multiply the per-hop delay of a link by ``factor`` (>= 1)."""

    at: float
    a: str
    b: str
    factor: float

    def __post_init__(self) -> None:
        _check_time(self.at)
        if not self.factor >= 1.0:
            raise ConfigurationError(
                f"link degradation factor must be >= 1, got {self.factor!r}"
            )


@dataclass(frozen=True)
class RSNodeDown:
    """Fail a NetRS operator; its groups degrade to client-side backups.

    ``operator`` is an operator ID, or the symbolic ``"busiest"`` (the
    operator carrying the most traffic groups in the deployed plan).
    """

    at: float
    operator: Union[int, str]

    def __post_init__(self) -> None:
        _check_time(self.at)


@dataclass(frozen=True)
class RSNodeUp:
    """Return a failed operator to the candidate pool.

    Note the asymmetry with the data path: recovery does *not* un-degrade
    the operator's groups -- per the paper, a fresh plan (replanning or an
    explicit :meth:`NetRSController.plan_and_deploy`) re-activates them.
    """

    at: float
    operator: Union[int, str]

    def __post_init__(self) -> None:
        _check_time(self.at)


@dataclass(frozen=True)
class NodeLeave:
    """Gracefully decommission ``server`` from the hash ring at ``at``.

    The server hands its key ranges to the new owners (it donates the
    migration transfers itself) and stops receiving new ownership; the
    host remains up, so in-flight requests still complete.
    """

    at: float
    server: str

    def __post_init__(self) -> None:
        _check_time(self.at)


@dataclass(frozen=True)
class NodeJoin:
    """Admit ``server`` (previously left, or started inactive) to the ring.

    The joiner acquires the ring segments its hash points claim; previous
    owners stream the affected key ranges to it as background transfers.
    """

    at: float
    server: str

    def __post_init__(self) -> None:
        _check_time(self.at)


#: Everything a schedule can hold.
FaultEvent = Union[
    ServerDown,
    ServerUp,
    LinkDown,
    LinkUp,
    LinkDegrade,
    RSNodeDown,
    RSNodeUp,
    NodeJoin,
    NodeLeave,
]

#: The graceful-churn subset (legal only in ``churn_schedule``).
CHURN_EVENT_TYPES = (NodeJoin, NodeLeave)
