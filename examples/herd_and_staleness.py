#!/usr/bin/env python3
"""Measuring the paper's two root causes, not just the latency win.

Section I of the paper blames client-side replica selection for (i) stale
local information and (ii) herd behavior.  This example instruments CliRS
and NetRS-ILP runs with the analysis probes and prints:

* mean/max feedback age at selection time (staleness),
* queue-imbalance statistics over time (herding),
* per-server load fairness,
* where selections happened (trace).

Usage::

    python examples/herd_and_staleness.py [--requests N]
"""

import argparse

from repro.analysis import attach_probes, jain_fairness
from repro.experiments import ExperimentConfig, build_scenario, run_experiment


def measure(scheme: str, requests: int, seed: int):
    config = ExperimentConfig.small(
        scheme=scheme, seed=seed, total_requests=requests
    )
    scenario = build_scenario(config)
    probes = attach_probes(scenario)
    result = run_experiment(config, scenario=scenario)
    return config, result, probes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    for scheme in ("clirs", "netrs-ilp"):
        config, result, probes = measure(scheme, args.requests, args.seed)
        staleness = probes.staleness.summary()
        herd = probes.queues.summary()
        fairness = jain_fairness(probes.trace.per_server_counts())
        rsnodes = result.rsnode_count if config.netrs else config.n_clients

        print(f"=== {scheme} ({rsnodes} RSNodes) ===")
        print(
            f"  latency: mean={result.summary()['mean']:.3f} ms  "
            f"p99={result.summary()['p99']:.3f} ms"
        )
        print(
            "  factor (i) staleness: "
            f"mean feedback age {staleness['mean_age']*1e3:.2f} ms, "
            f"max {staleness['max_age']*1e3:.1f} ms, "
            f"{staleness['cold_selections']:.0f} cold selections"
        )
        print(
            "  factor (ii) herding: "
            f"queue CV {herd.mean_cv:.3f}, max queue {herd.max_queue}, "
            f"oscillation episodes in {herd.oscillation_fraction*100:.1f}% "
            "of samples"
        )
        print(f"  per-server load fairness (Jain): {fairness:.4f}")
        if config.netrs:
            rsnode_counts = probes.trace.per_rsnode_counts()
            busiest = max(rsnode_counts.items(), key=lambda kv: kv[1])
            print(
                f"  selections spread over {len(rsnode_counts)} in-network "
                f"RSNodes; busiest handled {busiest[1]} requests"
            )
        print()


if __name__ == "__main__":
    main()
