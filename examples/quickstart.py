#!/usr/bin/env python3
"""Quickstart: compare client-side vs in-network replica selection.

Runs the same workload (same seed, same deployment, same fluctuations)
under the paper's four schemes and prints the latency metrics plus the
reductions NetRS achieves -- a one-minute miniature of the paper's headline
result.

Usage::

    python examples/quickstart.py [--requests N] [--seed S]
"""

import argparse

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.metrics import METRICS, summary_reduction
from repro.experiments.tables import SCHEME_LABELS

SCHEMES = ("clirs", "clirs-r95", "netrs-tor", "netrs-ilp")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(
        f"Running {len(SCHEMES)} schemes x {args.requests} requests on an "
        "8-ary fat-tree (128 hosts, 32 servers, 64 clients)...\n"
    )
    summaries = {}
    for scheme in SCHEMES:
        config = ExperimentConfig.small(
            scheme=scheme, seed=args.seed, total_requests=args.requests
        )
        result = run_experiment(config)
        summaries[scheme] = result.summary()
        extra = ""
        if config.netrs:
            extra = f"  (RSNodes: {result.rsnode_count})"
        if config.redundancy_enabled:
            extra = f"  (redundant requests: {result.redundant_requests})"
        label = SCHEME_LABELS[scheme]
        s = summaries[scheme]
        print(
            f"{label:>10}: mean={s['mean']:6.3f} ms  p95={s['p95']:7.3f}  "
            f"p99={s['p99']:7.3f}  p99.9={s['p999']:7.3f}{extra}"
        )

    print("\nNetRS-ILP latency reduction vs CliRS:")
    cuts = summary_reduction(summaries["clirs"], summaries["netrs-ilp"])
    for metric in METRICS:
        print(f"  {metric:>5}: {cuts[metric]:5.1f} %")


if __name__ == "__main__":
    main()
