#!/usr/bin/env python3
"""Exception handling: operator failure and Degraded Replica Selection.

Reproduces the availability story of paper section III-C: mid-run, the
busiest RSNode fails.  The controller flips the affected traffic groups to
DRS (requests go to the client-chosen backup replica), the run completes
with zero lost requests, and the latency cost of degradation is measured by
comparing against an undisturbed run.

Usage::

    python examples/failure_and_drs.py [--requests N]
"""

import argparse

from repro.experiments import ExperimentConfig, build_scenario, run_experiment


def run_with_failure(config, at_fraction):
    scenario = build_scenario(config)
    controller = scenario.controller
    plan = scenario.plan
    # Pick the RSNode carrying the most groups.
    victim = max(plan.rsnode_ids, key=lambda oid: len(plan.groups_of(oid)))
    when = at_fraction * config.total_requests / config.arrival_rate()
    scenario.env.call_in(when, controller.handle_operator_failure, victim)
    result = run_experiment(config, scenario=scenario, keep_scenario=True)
    return result, victim


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    config = ExperimentConfig.small(
        scheme="netrs-ilp", seed=args.seed, total_requests=args.requests
    )

    print("Baseline run (no failures)...")
    baseline = run_experiment(config)
    b = baseline.summary()
    print(
        f"  {baseline.rsnode_count} RSNodes; mean={b['mean']:.3f} ms "
        f"p99={b['p99']:.3f} ms"
    )

    print("\nRun with the busiest RSNode failing 30% into the workload...")
    result, victim = run_with_failure(config, at_fraction=0.3)
    controller = result.scenario.controller
    degraded = sorted(controller.current_plan.drs_groups)
    f = result.summary()
    print(f"  failed operator: {victim} ({controller.operators[victim].spec.switch})")
    print(f"  groups degraded to DRS: {degraded}")
    print(
        f"  completed {result.completed_requests}/{config.total_requests} "
        "requests (no losses)"
    )
    print(f"  mean={f['mean']:.3f} ms p99={f['p99']:.3f} ms")

    print("\nLatency cost of degradation:")
    for metric in ("mean", "p95", "p99", "p999"):
        delta = f[metric] - b[metric]
        print(f"  {metric:>5}: {b[metric]:8.3f} -> {f[metric]:8.3f} ms ({delta:+.3f})")


if __name__ == "__main__":
    main()
