#!/usr/bin/env python3
"""Mesoscale scale demo: a million requests across a 100k-host fat-tree.

The flow tier prices each request as a handful of analytically-scheduled
completions instead of ~15 hop-by-hop packet events, which is what makes
this scale tractable in pure Python (see docs/MESOSCALE.md).  This script

1. measures the packet tier's engine-events-per-request on a small
   reference run of the same scheme, then
2. runs the full-scale flow experiment and reports wall clock, latency
   percentiles, events-per-request and the packet/flow event ratio.

It exits nonzero if the flow tier does not beat the packet tier by at
least 50x engine events per request, so CI can run it as a smoke check.

Usage::

    python examples/mesoscale_100k.py            # 101,306 hosts, 1M requests
    python examples/mesoscale_100k.py --smoke    # 1,024 hosts, 20k requests (CI)
"""

import argparse
import sys
import time

from repro.experiments import ExperimentConfig, run_experiment

#: The demo must beat the packet tier by at least this factor (ISSUE gate).
MIN_EVENT_RATIO = 50.0


def demo_config(smoke: bool, scheme: str, seed: int) -> ExperimentConfig:
    # Zipf skew is scale-free: at 1,000 servers the default exponent (0.99)
    # concentrates ~7% of the ~700k req/s aggregate on one 3-replica key
    # set, saturating it regardless of fleet size.  The demo milds the skew
    # so per-replica load stays below capacity at scale.
    scale = dict(zipf_exponent=0.6, utilization=0.7, fidelity="flow")
    if smoke:
        # CI-sized: a 16-ary fat-tree is 1,024 hosts.
        return ExperimentConfig.small(scheme=scheme, seed=seed).replace(
            fat_tree_k=16,
            n_servers=100,
            n_clients=400,
            total_requests=20_000,
            **scale,
        )
    # Full scale: a 74-ary fat-tree is 101,306 hosts.
    return ExperimentConfig.small(scheme=scheme, seed=seed).replace(
        fat_tree_k=74,
        n_servers=1_000,
        n_clients=4_000,
        total_requests=1_000_000,
        **scale,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 1,024 hosts and 20k requests instead of "
        "101,306 hosts and 1M requests",
    )
    parser.add_argument(
        "--scheme", default="clirs", choices=("clirs", "clirs-r95", "netrs-tor")
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    # --- packet-tier reference: events/request on a small same-scheme run.
    reference = ExperimentConfig.small(
        scheme=args.scheme, seed=args.seed, total_requests=4_000
    )
    started = time.perf_counter()
    packet = run_experiment(reference)
    packet_wall = time.perf_counter() - started
    packet_epr = packet.events_executed / packet.completed_requests
    print(
        f"packet reference: {packet.completed_requests} requests on "
        f"{reference.fat_tree_k}-ary tree in {packet_wall:.1f}s -- "
        f"{packet.events_executed} engine events "
        f"({packet_epr:.2f}/request)"
    )

    # --- the flow-tier run at scale.
    config = demo_config(args.smoke, args.scheme, args.seed)
    hosts = config.fat_tree_k ** 3 // 4
    print(
        f"\nflow tier: {hosts} hosts ({config.fat_tree_k}-ary fat-tree), "
        f"{config.n_servers} servers, {config.n_clients} clients, "
        f"{config.total_requests} requests [{args.scheme}] ..."
    )
    started = time.perf_counter()
    result = run_experiment(config)
    wall = time.perf_counter() - started

    s = result.summary()
    flow_epr = result.events_executed / result.completed_requests
    micro_epr = result.micro_events / result.completed_requests
    ratio = packet_epr / flow_epr if flow_epr > 0 else float("inf")
    rate = result.completed_requests / wall

    print(
        f"completed {result.completed_requests} requests in {wall:.1f}s "
        f"({rate:,.0f} requests/s simulated throughput)"
    )
    print(
        f"latency: mean={s['mean']:.3f}ms p95={s['p95']:.3f}ms "
        f"p99={s['p99']:.3f}ms p99.9={s['p999']:.3f}ms"
    )
    print(
        f"engine events: {result.events_executed} ({flow_epr:.6f}/request) "
        f"vs packet {packet_epr:.2f}/request"
    )
    print(
        f"micro events (internal flow completions): {result.micro_events} "
        f"({micro_epr:.2f}/request)"
    )
    ratio_text = f"{ratio:.0f}x" if ratio != float("inf") else "inf"
    print(f"engine-event ratio packet/flow: {ratio_text}")

    if ratio < MIN_EVENT_RATIO:
        print(
            f"FAIL: event ratio {ratio:.1f}x below the required "
            f"{MIN_EVENT_RATIO:.0f}x",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: event ratio exceeds {MIN_EVENT_RATIO:.0f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
