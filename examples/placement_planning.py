#!/usr/bin/env python3
"""Exploring the RSNode placement ILP (paper section III).

Builds the placement problem for a scaled data center and shows how the
Replica Selection Plan reacts to the two knobs system administrators hold:

* the accelerator utilization cap ``U`` (capacity per operator), and
* the extra-hops budget ``E``.

Tighter hop budgets push RSNodes from core switches down toward pod
aggregation switches and ultimately the ToRs; tighter capacity forces more
RSNodes.  The exact ILP is compared against the greedy heuristic throughout.

Usage::

    python examples/placement_planning.py
"""

from repro.core.placement import solve_greedy, solve_ilp
from repro.core.placement.problem import (
    PlacementProblem,
    build_operator_specs,
    estimate_traffic,
)
from repro.core.plan import make_traffic_groups
from repro.errors import InfeasiblePlanError
from repro.experiments import ExperimentConfig, build_scenario

TIER_NAMES = {0: "core", 1: "agg", 2: "tor"}


def describe(problem: PlacementProblem, plan) -> str:
    by_id = {op.operator_id: op for op in problem.operators}
    tiers = {}
    for oid in plan.rsnode_ids:
        tiers[TIER_NAMES[by_id[oid].tier]] = (
            tiers.get(TIER_NAMES[by_id[oid].tier], 0) + 1
        )
    mix = " + ".join(f"{count} {tier}" for tier, count in sorted(tiers.items()))
    hops = problem.plan_extra_hops(plan.assignments)
    return (
        f"{plan.rsnode_count:2d} RSNodes ({mix}); "
        f"extra hops {hops:,.0f}/s; solved in {plan.solve_time*1e3:.1f} ms"
    )


def main() -> None:
    config = ExperimentConfig.small(scheme="netrs-ilp", seed=1)
    scenario = build_scenario(config.replace(total_requests=100))
    topology = scenario.topology
    groups = make_traffic_groups(topology, scenario.client_hosts, "rack")
    rate = config.arrival_rate()
    group_rates = {
        g.group_id: rate * len(g.hosts) / config.n_clients for g in groups
    }
    traffic = estimate_traffic(
        groups,
        topology=topology,
        server_hosts=scenario.server_hosts,
        group_rates=group_rates,
    )

    print(
        f"{len(groups)} rack-level traffic groups, aggregate rate "
        f"{rate:,.0f} req/s\n"
    )

    print("=== sweeping the extra-hops budget E (U fixed at 50%) ===")
    operators = build_operator_specs(
        topology,
        accelerator_cores=config.accelerator_cores,
        accelerator_service_time=config.accelerator_service_time,
        max_utilization=0.5,
    )
    for fraction in (1.0, 0.4, 0.2, 0.1, 0.05, 0.0):
        problem = PlacementProblem(
            groups=groups,
            operators=operators,
            traffic=traffic,
            extra_hops_budget=fraction * rate,
        )
        ilp = solve_ilp(problem)
        try:
            greedy = solve_greedy(problem)
            greedy_text = f"greedy: {greedy.rsnode_count} RSNodes"
        except InfeasiblePlanError:
            greedy_text = "greedy: infeasible"
        print(f"E = {fraction:4.2f}*A -> ILP: {describe(problem, ilp)} | {greedy_text}")

    print("\n=== sweeping the accelerator cap U (E fixed at 20% of A) ===")
    for max_util in (0.9, 0.5, 0.2, 0.1, 0.05):
        operators = build_operator_specs(
            topology,
            accelerator_cores=config.accelerator_cores,
            accelerator_service_time=config.accelerator_service_time,
            max_utilization=max_util,
        )
        problem = PlacementProblem(
            groups=groups,
            operators=operators,
            traffic=traffic,
            extra_hops_budget=0.2 * rate,
        )
        try:
            ilp = solve_ilp(problem)
            print(f"U = {max_util:4.2f} -> ILP: {describe(problem, ilp)}")
        except InfeasiblePlanError as error:
            print(f"U = {max_util:4.2f} -> infeasible ({error})")


if __name__ == "__main__":
    main()
