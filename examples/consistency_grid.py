#!/usr/bin/env python3
"""Write mix + membership churn grid: in-network selection vs stale replicas.

The paper evaluates NetRS on a read-only workload with static membership.
This grid is the first measurement in the repo of how in-network replica
selection behaves when replica state can actually diverge: client PUTs with
a write quorum, quorum reads (R=2) that detect version mismatches and
trigger read-repair, and a mid-run node leave/join that migrates key ranges
through the same fabric the foreground requests use (docs/CONSISTENCY.md).

The sweep is the Fig. 4 setup (fixed client count) with
``write_fraction`` in {0, 0.1, 0.3}, comparing clirs vs netrs-tor.

Usage::

    python examples/consistency_grid.py [--requests N] [--reps R] [--smoke]
"""

import argparse

from repro.experiments import ExperimentConfig
from repro.experiments.sweep import run_sweep

SCHEMES = ("clirs", "netrs-tor")
WRITE_FRACTIONS = (0.0, 0.1, 0.3)
#: server#1 retires at 30 ms (its ranges migrate out) and rejoins at 80 ms
#: (they migrate back).  Symbolic targets resolve per-seed, like faults.
CHURN = "node-leave@0.03:server#1; node-join@0.08:server#1"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=6000)
    parser.add_argument("--reps", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny fast run (CI)"
    )
    args = parser.parse_args()

    requests = 1500 if args.smoke else args.requests
    base = ExperimentConfig.small(seed=args.seed, total_requests=requests)
    result = run_sweep(
        base,
        parameter="write_fraction",
        values=list(WRITE_FRACTIONS),
        schemes=list(SCHEMES),
        repetitions=args.reps,
        overrides={
            "read_quorum": 2,
            "churn_schedule": CHURN,
            "request_timeout": 0.05,
        },
    )

    header = (
        f"{'writes':>7} {'scheme':>10} {'mean':>8} {'p99':>8} "
        f"{'stale':>6} {'repairs':>8} {'migrated':>9} {'wfail':>6}"
    )
    print(f"quorum reads R=2, churn: {CHURN}\n")
    print(header)
    print("-" * len(header))
    for fraction in WRITE_FRACTIONS:
        for scheme in SCHEMES:
            cell = (fraction, scheme)
            s = result.cells[cell]
            extras = result.extras[cell]
            print(
                f"{fraction:7.0%} {scheme:>10} {s['mean']:8.3f} "
                f"{s['p99']:8.3f} {extras['stale_reads']:6.0f} "
                f"{extras['read_repairs']:8.0f} "
                f"{extras['migrated_keys']:9.0f} "
                f"{extras['write_failures']:6.0f}"
            )
    print(
        "\nAt write_fraction=0 the consistency counters stay near zero "
        "(nothing diverges without writes); as the write mix grows, quorum "
        "reads start catching replicas mid-update and read-repair converges "
        "them.  Migration traffic is identical across schemes -- churn is "
        "scheduled, not load-dependent -- so any latency gap between the "
        "clirs and netrs-tor rows at equal write mix is the selection "
        "scheme's to keep or lose."
    )


if __name__ == "__main__":
    main()
