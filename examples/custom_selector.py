#!/usr/bin/env python3
"""Plugging a custom replica-selection algorithm into NetRS.

NetRS supports "diverse algorithms of replica selection" (paper section
IV-C): the selector on the accelerator is just a
:class:`~repro.selection.base.ReplicaSelector`.  This example implements a
simple *expected-wait* selector -- rank replicas by piggybacked queue size
divided by piggybacked service rate -- registers it, and races it against C3
at the same RSNode placement.

Usage::

    python examples/custom_selector.py [--requests N]
"""

import argparse
from typing import Dict, Sequence

import numpy as np

from repro.experiments import ExperimentConfig, run_experiment
from repro.network.packet import ServerStatus
from repro.selection import ReplicaSelector, register


class ExpectedWaitSelector(ReplicaSelector):
    """Pick the replica with the lowest piggybacked queue/rate ratio.

    Unlike C3 it ignores locally outstanding requests, so it herds more --
    running this example shows why C3's q_hat extrapolation matters.
    """

    algorithm_name = "expected-wait"

    def __init__(self, prior_service_rate: float, rng: np.random.Generator) -> None:
        super().__init__(rng=rng)
        self._prior_rate = prior_service_rate
        self._queue: Dict[str, float] = {}
        self._rate: Dict[str, float] = {}

    def _expected_wait(self, server: str) -> float:
        queue = self._queue.get(server, 0.0)
        rate = self._rate.get(server, self._prior_rate)
        return (queue + 1.0) / rate

    def select(self, candidates: Sequence[str], now: float) -> str:
        self._check_candidates(candidates)
        self.selections += 1
        best = min(self._expected_wait(s) for s in candidates)
        winners = [s for s in candidates if self._expected_wait(s) == best]
        return self._tie_break(winners)

    def note_response(
        self, server: str, latency: float, status: ServerStatus, now: float
    ) -> None:
        self._queue[server] = float(status.queue_size)
        self._rate[server] = status.service_rate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    register(
        "expected-wait",
        lambda n, prior, rng: ExpectedWaitSelector(prior, rng),
    )

    print("NetRS-ILP with different RSNode algorithms:\n")
    for algorithm in ("c3", "expected-wait", "least-outstanding", "random"):
        config = ExperimentConfig.small(
            scheme="netrs-ilp",
            seed=args.seed,
            total_requests=args.requests,
            algorithm=algorithm,
        )
        result = run_experiment(config)
        s = result.summary()
        print(
            f"{algorithm:>18}: mean={s['mean']:6.3f} ms  "
            f"p99={s['p99']:7.3f} ms  p99.9={s['p999']:7.3f} ms"
        )


if __name__ == "__main__":
    main()
