#!/usr/bin/env python3
"""Where does the time go?  Latency decomposition across service times.

Fig. 7 of the paper shows NetRS-ILP's mean-latency advantage shrinking as
the service time drops.  This example explains the effect mechanically by
decomposing the mean latency of CliRS and NetRS-ILP into:

* selection   -- issue until the RSNode finished choosing (0 under CliRS),
* server queue / server service,
* network     -- propagation hops and everything else.

As t_kv falls, the fixed selection+network costs of the NetRS detour stay
constant while the server components shrink -- until they dominate.

Also prints the NetRS protocol's bandwidth overhead (design goal: keep it
low).

Usage::

    python examples/latency_breakdown.py [--requests N]
"""

import argparse

from repro.analysis import attach_probes
from repro.experiments import ExperimentConfig, build_scenario, run_experiment

SERVICE_TIMES = (0.5e-3, 1e-3, 4e-3)


def breakdown(scheme: str, service_time: float, requests: int, seed: int):
    config = ExperimentConfig.small(
        scheme=scheme,
        seed=seed,
        total_requests=requests,
        mean_service_time=service_time,
    )
    scenario = build_scenario(config)
    probes = attach_probes(scenario, staleness=False, queues=False)
    result = run_experiment(config, scenario=scenario)
    return result, probes.trace.decomposition_means()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=6000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    header = (
        f"{'t_kv':>7} {'scheme':>10} {'mean':>8} {'select':>8} "
        f"{'queue':>8} {'service':>8} {'network':>8}"
    )
    print(header)
    print("-" * len(header))
    for service_time in SERVICE_TIMES:
        for scheme in ("clirs", "netrs-ilp"):
            result, means = breakdown(
                scheme, service_time, args.requests, args.seed
            )
            print(
                f"{service_time*1e3:6.1f}ms {scheme:>10} "
                f"{means['total']*1e3:7.3f} {means['selection']*1e3:8.3f} "
                f"{means['server_queue']*1e3:8.3f} "
                f"{means['server_service']*1e3:8.3f} "
                f"{means['network']*1e3:8.3f}"
            )
        print()

    result, _ = breakdown("netrs-ilp", 4e-3, args.requests, args.seed)
    print(
        "NetRS protocol bandwidth overhead: "
        f"{result.netrs_overhead_bytes:,} of {result.bytes_transferred:,} "
        f"bytes ({result.protocol_overhead_fraction()*100:.2f} %)"
    )


if __name__ == "__main__":
    main()
