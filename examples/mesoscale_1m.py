#!/usr/bin/env python3
"""Mesoscale scale demo: a million requests across a million-host fat-tree.

The flow tier prices each request as a handful of analytically-scheduled
completions instead of ~15 hop-by-hop packet events, and the full-scale
run layers the struct-of-arrays fast path (``vector_batch``) and the
sharded parallel loop (``shards``) on top, which is what makes this scale
tractable in pure Python (see docs/MESOSCALE.md).  This script

1. measures the packet tier's engine-events-per-request on a small
   reference run of the same scheme, then
2. runs the full-scale flow experiment and reports wall clock, latency
   percentiles, events-per-request, peak RSS and the packet/flow event
   ratio.

It exits nonzero if the flow tier does not beat the packet tier by at
least 50x engine events per request, so CI can run it as a smoke check.

Usage::

    python examples/mesoscale_1m.py                  # 1,024,000 hosts, 1M requests
    python examples/mesoscale_1m.py --hosts 100000   # ~100k hosts instead
    python examples/mesoscale_1m.py --smoke          # 1,024 hosts, 20k requests (CI)

``--workers N`` runs the shards on N processes (default: REPRO_SHARD_WORKERS
or serial in one process); either way the result is byte-identical -- the
merge is job-key ordered.
"""

import argparse
import os
import resource
import sys
import time

from repro.experiments import ExperimentConfig, run_experiment

#: The demo must beat the packet tier by at least this factor (ISSUE gate).
MIN_EVENT_RATIO = 50.0

#: Full-scale topology: a 160-ary fat-tree is exactly 1,024,000 hosts.
DEFAULT_HOSTS = 1_024_000


def k_for_hosts(hosts: int) -> int:
    """Smallest even fat-tree arity whose k^3/4 hosts reach ``hosts``."""
    k = 4
    while k**3 // 4 < hosts:
        k += 2
    return k


def demo_config(smoke: bool, hosts: int, shards: int, scheme: str, seed: int):
    # Zipf skew is scale-free: at 1,000 servers the default exponent (0.99)
    # concentrates ~7% of the ~700k req/s aggregate on one 3-replica key
    # set, saturating it regardless of fleet size.  The demo milds the skew
    # so per-replica load stays below capacity at scale.
    scale = dict(
        zipf_exponent=0.6, utilization=0.7, fidelity="flow", vector_batch=4_096
    )
    if smoke:
        # CI-sized: a 16-ary fat-tree is 1,024 hosts (single shard so the
        # event-ratio gate measures the plain flow tier).
        return ExperimentConfig.small(scheme=scheme, seed=seed).replace(
            fat_tree_k=16,
            n_servers=100,
            n_clients=400,
            total_requests=20_000,
            **scale,
        )
    # Full scale: the topology is closed-form (no per-host objects), so a
    # million hosts costs arithmetic, not memory; the per-request state is
    # the bounded part and the shards split it.
    return ExperimentConfig.small(scheme=scheme, seed=seed).replace(
        fat_tree_k=k_for_hosts(hosts),
        n_servers=1_000,
        n_clients=4_000,
        total_requests=1_000_000,
        shards=shards,
        **scale,
    )


def peak_rss_mib() -> float:
    """Peak RSS of this process plus any shard workers, in MiB."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (own + children) / 1024.0  # ru_maxrss is KiB on Linux


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 1,024 hosts and 20k requests instead of "
        "1,024,000 hosts and 1M requests",
    )
    parser.add_argument(
        "--hosts",
        type=int,
        default=DEFAULT_HOSTS,
        help="target host count for the full-scale run; rounded up to the "
        "nearest fat-tree arity (default: 1,024,000 = a 160-ary tree)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="independent sub-experiments the full-scale run splits into "
        "(default 4; --smoke always runs a single shard)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes to run the shards on (default: REPRO_SHARD_WORKERS "
        "or serial); the merged result is identical for any value",
    )
    parser.add_argument(
        "--scheme", default="clirs", choices=("clirs", "clirs-r95", "netrs-tor")
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    if args.workers is not None:
        os.environ["REPRO_SHARD_WORKERS"] = str(args.workers)

    # --- packet-tier reference: events/request on a small same-scheme run.
    reference = ExperimentConfig.small(
        scheme=args.scheme, seed=args.seed, total_requests=4_000
    )
    started = time.perf_counter()
    packet = run_experiment(reference)
    packet_wall = time.perf_counter() - started
    packet_epr = packet.events_executed / packet.completed_requests
    print(
        f"packet reference: {packet.completed_requests} requests on "
        f"{reference.fat_tree_k}-ary tree in {packet_wall:.1f}s -- "
        f"{packet.events_executed} engine events "
        f"({packet_epr:.2f}/request)"
    )

    # --- the flow-tier run at scale.
    config = demo_config(args.smoke, args.hosts, args.shards, args.scheme, args.seed)
    hosts = config.fat_tree_k ** 3 // 4
    shard_note = f", {config.shards} shards" if config.shards > 1 else ""
    print(
        f"\nflow tier: {hosts:,} hosts ({config.fat_tree_k}-ary fat-tree), "
        f"{config.n_servers} servers, {config.n_clients} clients, "
        f"{config.total_requests:,} requests [{args.scheme}, "
        f"vector_batch={config.vector_batch}{shard_note}] ..."
    )
    started = time.perf_counter()
    result = run_experiment(config)
    wall = time.perf_counter() - started

    s = result.summary()
    flow_epr = result.events_executed / result.completed_requests
    micro_epr = result.micro_events / result.completed_requests
    ratio = packet_epr / flow_epr if flow_epr > 0 else float("inf")
    rate = result.completed_requests / wall

    print(
        f"completed {result.completed_requests:,} requests in {wall:.1f}s "
        f"({rate:,.0f} requests/s simulated throughput)"
    )
    print(
        f"latency: mean={s['mean']:.3f}ms p95={s['p95']:.3f}ms "
        f"p99={s['p99']:.3f}ms p99.9={s['p999']:.3f}ms"
    )
    print(
        f"engine events: {result.events_executed} ({flow_epr:.6f}/request) "
        f"vs packet {packet_epr:.2f}/request"
    )
    print(
        f"micro events (internal flow completions): {result.micro_events} "
        f"({micro_epr:.2f}/request)"
    )
    print(f"peak RSS: {peak_rss_mib():,.0f} MiB (self + shard workers)")
    ratio_text = f"{ratio:.0f}x" if ratio != float("inf") else "inf"
    print(f"engine-event ratio packet/flow: {ratio_text}")

    if ratio < MIN_EVENT_RATIO:
        print(
            f"FAIL: event ratio {ratio:.1f}x below the required "
            f"{MIN_EVENT_RATIO:.0f}x",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: event ratio exceeds {MIN_EVENT_RATIO:.0f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
