#!/usr/bin/env python3
"""Regenerate any of the paper's evaluation figures from the command line.

Equivalent to ``netrs figure <id>`` but shown here as library usage: define
the sweep, run the grid, format the tables, extract machine-readable series.

Usage::

    python examples/paper_figures.py fig4 [--requests N] [--reps R]
    python examples/paper_figures.py fig6 --profile paper --jobs 8 \
        --run-dir runs/fig6          # full scale: parallel + resumable!
"""

import argparse

from repro.exec import ExecutionPolicy, ProgressReporter
from repro.experiments import FIGURES, run_figure
from repro.experiments.tables import (
    figure_series,
    format_figure,
    format_reductions,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", choices=sorted(FIGURES))
    parser.add_argument("--profile", choices=("small", "paper"), default="small")
    parser.add_argument("--requests", type=int, default=6000)
    parser.add_argument("--reps", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes"
    )
    parser.add_argument(
        "--run-dir", default="", help="spool a resumable JSONL run ledger here"
    )
    parser.add_argument(
        "--resume", action="store_true", help="skip jobs already in the ledger"
    )
    args = parser.parse_args()

    spec = FIGURES[args.figure]
    print(f"Regenerating {spec.title} (profile={args.profile})...\n")
    execution = ExecutionPolicy(
        workers=args.jobs,
        run_dir=args.run_dir or None,
        resume=args.resume,
        progress=ProgressReporter(workers=args.jobs)
        if args.jobs > 1 or args.resume
        else None,
    )
    sweep = run_figure(
        args.figure,
        profile=args.profile,
        seed=args.seed,
        repetitions=args.reps,
        total_requests=args.requests,
        execution=execution,
    )
    print(format_figure(sweep, title=spec.title))
    print()
    print(format_reductions(sweep))

    # The same data, machine-readable (e.g. for plotting):
    series = figure_series(sweep)
    print("\np99 series (ms):")
    for scheme, values in series["p99"].items():
        formatted = ", ".join(f"{v:.2f}" for v in values)
        print(f"  {scheme:>10}: [{formatted}]")


if __name__ == "__main__":
    main()
