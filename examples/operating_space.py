#!/usr/bin/env python3
"""Where does NetRS pay off?  A utilization x client-count heatmap.

Crosses the two parameters the paper sweeps separately (Figs. 4 and 6) and
renders the mean-latency reduction of NetRS-ILP over CliRS at every point of
the operating space.  The structure the paper implies becomes visible in one
picture: the advantage grows toward the loaded, many-client corner.

Usage::

    python examples/operating_space.py [--requests N] [--jobs N]
"""

import argparse

from repro.exec import ExecutionPolicy, ProgressReporter
from repro.experiments import ExperimentConfig
from repro.experiments.grid import format_heatmap, run_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes"
    )
    args = parser.parse_args()

    base = ExperimentConfig.small(seed=args.seed, total_requests=args.requests)
    print(
        "Running a 3x3 grid x 2 schemes "
        f"({args.requests} requests per run, 18 runs)...\n"
    )
    execution = ExecutionPolicy(
        workers=args.jobs,
        progress=ProgressReporter(workers=args.jobs) if args.jobs > 1 else None,
    )
    grid = run_grid(
        base,
        row_parameter="utilization",
        row_values=[0.3, 0.6, 0.9],
        column_parameter="n_clients",
        column_values=[16, 48, 96],
        schemes=["clirs", "netrs-ilp"],
        execution=execution,
    )
    print(
        format_heatmap(
            grid, metric="mean", baseline="clirs", other="netrs-ilp"
        )
    )
    print()
    print(format_heatmap(grid, metric="p99", baseline="clirs", other="netrs-ilp"))
    print()
    print(format_heatmap(grid, metric="mean", scheme="clirs"))


if __name__ == "__main__":
    main()
