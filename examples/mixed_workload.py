#!/usr/bin/env python3
"""Mixed read/write workloads (extension beyond the paper's read-only eval).

NetRS selects replicas for *reads*; writes fan out to every replica and wait
for a quorum, so they bypass selection entirely.  This example measures how
the read-path win coexists with a write mix -- and shows a second-order
effect: better read placement shortens every server's queue, so even the
selection-free writes get faster under NetRS.

Usage::

    python examples/mixed_workload.py [--requests N] [--write-fraction F]
"""

import argparse

from repro.experiments import ExperimentConfig, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8000)
    parser.add_argument("--write-fraction", type=float, default=0.2)
    parser.add_argument("--quorum", type=int, default=0, help="0 = all replicas")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(
        f"{args.write_fraction*100:.0f}% writes, quorum="
        f"{args.quorum or 'all'}, {args.requests} requests\n"
    )
    header = f"{'scheme':>10} {'read mean':>10} {'read p99':>9} {'write mean':>11} {'write p99':>10}"
    print(header)
    print("-" * len(header))
    for scheme in ("clirs", "netrs-ilp"):
        config = ExperimentConfig.small(
            scheme=scheme,
            seed=args.seed,
            total_requests=args.requests,
            write_fraction=args.write_fraction,
            write_quorum=args.quorum or None,
        )
        result = run_experiment(config)
        reads = result.summary()
        writes = result.write_summary()
        print(
            f"{scheme:>10} {reads['mean']:9.3f}  {reads['p99']:8.3f} "
            f"{writes['mean']:10.3f}  {writes['p99']:9.3f}"
        )
    print(
        "\nReads keep the in-network selection advantage -- and writes "
        "benefit indirectly: with reads spread away from busy servers, the "
        "queues a write's slowest replica sits in are shorter too."
    )


if __name__ == "__main__":
    main()
