#!/usr/bin/env python3
"""The warm-up transient after deploying a new Replica Selection Plan.

Paper section II: "As the newly introduced RSNodes have to build the view of
the system status from scratch, the deployment of a new RSP may lead to a
temporary latency increase."  This example forces a plan change mid-run --
from the ILP plan onto a single cold core RSNode -- and renders the latency
timeline around the switch as an ASCII strip chart.

Usage::

    python examples/rsp_deployment_transient.py [--requests N]
"""

import argparse

from repro.analysis import attach_probes
from repro.core.plan import SelectionPlan
from repro.experiments import ExperimentConfig, build_scenario, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=12_000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    config = ExperimentConfig.small(
        scheme="netrs-ilp",
        seed=args.seed,
        total_requests=args.requests,
        warmup_fraction=0.0,
    )
    scenario = build_scenario(config)
    controller = scenario.controller
    probes = attach_probes(scenario, staleness=False, queues=False)

    # Build the replacement plan: everything on one (so far unused) core.
    used = {
        controller.operators[oid].spec.switch
        for oid in scenario.plan.rsnode_ids
    }
    cold_core = next(
        op
        for op in controller.operators.values()
        if op.spec.tier == 0 and op.spec.switch not in used
    )
    new_plan = SelectionPlan(
        assignments={
            g.group_id: cold_core.operator_id for g in controller.groups
        },
        solver="manual-core",
    )
    switch_at = 0.5 * config.total_requests / config.arrival_rate()
    scenario.env.call_in(switch_at, controller.deploy, new_plan)

    print(
        f"Initial plan: {scenario.plan.describe()}; switching everything to "
        f"cold RSNode {cold_core.spec.switch} at t={switch_at*1e3:.0f} ms\n"
    )
    run_experiment(config, scenario=scenario)

    bucket = 20e-3
    timeline = probes.trace.latency_timeline(bucket)
    # Drop the drain tail: once the workload stops issuing, a bucket holds
    # only slow stragglers and its mean is not comparable.
    typical = sorted(count for _, _, count in timeline)[len(timeline) // 2]
    timeline = [row for row in timeline if row[2] >= typical // 4]
    peak = max(mean for _, mean, _ in timeline)
    print(f"mean latency per {bucket*1e3:.0f} ms bucket (# = {peak*1e3/40:.2f} ms):")
    for start, mean, count in timeline:
        bar = "#" * max(1, round(40 * mean / peak))
        marker = "  <-- new RSP deployed" if start <= switch_at < start + bucket else ""
        print(f"  {start*1e3:7.0f} ms |{bar} {mean*1e3:6.2f} ms  (n={count}){marker}")

    before = [m for t, m, _ in timeline if t < switch_at]
    after = [m for t, m, _ in timeline if t >= switch_at]
    if before and after:
        print(
            f"\nmean before switch: {sum(before)/len(before)*1e3:.2f} ms | "
            f"after switch: {sum(after)/len(after)*1e3:.2f} ms"
        )
        print(
            "At this scale the cold-start transient is mild: a fresh C3 "
            "selector spreads load uniformly until feedback arrives, and "
            "feedback takes only a few round trips.  The paper's knobs "
            "(convergence rate, number of new RSNodes, service rate) can "
            "all be stressed via ExperimentConfig."
        )


if __name__ == "__main__":
    main()
