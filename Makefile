# Convenience targets for the NetRS reproduction.

PYTHON ?= python3

.PHONY: install test test-fast test-slow ci faults-smoke mesoscale-smoke docs-check consistency-smoke bench bench-smoke bench-profile bench-compare bench-figures lint lint-report lint-baseline contracts help

help:
	@echo "install       editable install"
	@echo "test          full test suite (incl. slow shape assertions)"
	@echo "test-fast     fast tests only (~15 s)"
	@echo "ci            what CI runs: fast tests (see .github/workflows/ci.yml)"
	@echo "faults-smoke  crash-and-recover drill from docs/FAULTS.md (retries, zero lost)"
	@echo "mesoscale-smoke  1k-host flow-tier demo + fidelity gate on one paper config"
	@echo "docs-check    validate every relative link/anchor in README.md + docs/*.md, then run the docs/CONSISTENCY.md example"
	@echo "consistency-smoke  quorum-write/read-repair/churn drill from docs/CONSISTENCY.md"
	@echo "lint          determinism + contract sanitizers + ruff + mypy (latter two skip if absent)"
	@echo "lint-report   lint (incl. contracts) with JSON output to lint-report.json (CI artifact)"
	@echo "lint-baseline re-snapshot lint-baseline.json (grandfathering workflow)"
	@echo "contracts     contract sanitizer only: mirror/kernel/digest drift (CON001..CON003)"
	@echo "bench         all benchmarks (figures + ablations + microbench)"
	@echo "bench-smoke   engine microbenchmarks, low rounds, JSON for CI trends"
	@echo "bench-profile harness suite under cProfile (pstats under benchmarks/results/)"
	@echo "bench-compare harness suite vs committed BENCH_8.json (regression gate)"
	@echo "bench-figures just the paper figures (results under benchmarks/results/)"

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-slow:
	$(PYTHON) -m pytest tests/ -m slow

ci:
	$(PYTHON) -m pytest tests/ -m "not slow"

# The runnable example of docs/FAULTS.md, exactly as written there: server#0
# crashes at 20 ms and recovers at 60 ms while clients retry on a 20 ms
# timeout.  Expect retries > 0 and lost=0 in the `faults:` report line.
faults-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro run clirs \
		--requests 4000 \
		--faults "server-down@0.02:server#0;server-up@0.06:server#0" \
		--request-timeout 0.02 --max-retries 5

# Documentation gate: every relative link and anchor across README.md and
# docs/*.md must resolve (repro.lint.docs), then the runnable example of
# docs/CONSISTENCY.md executes exactly as written there.
docs-check:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.lint.docs
	$(MAKE) consistency-smoke

# The runnable example of docs/CONSISTENCY.md, exactly as written there:
# a 20% write mix with W=2, quorum reads R=2, and server#1 leaving the
# ring at 30 ms then rejoining at 80 ms.  Expect writes/consistency/churn
# report lines with churn events=2 and migrated keys > 0.
consistency-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro run clirs --requests 4000 \
		--write-fraction 0.2 --write-quorum 2 --read-quorum 2 \
		--churn-schedule "node-leave@0.03:server#1;node-join@0.08:server#1" \
		--request-timeout 0.05

# The flow tier's CI drill (docs/MESOSCALE.md): the scaled-down 1,024-host
# demo must beat the packet tier by 50x engine events per request, and the
# fidelity gate must hold on one committed paper scenario.
mesoscale-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) examples/mesoscale_1m.py --smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro validate-fidelity \
		--scenario fig4-clirs-r95

# Three layers: the project AST sanitizer (per-file rules + declared
# contracts) is mandatory; ruff/mypy run when installed (pip install -e
# ".[lint]") and are skipped gracefully otherwise so `make lint` works in
# the minimal container.
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.lint src/repro --contracts --stats
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests; \
	else echo "ruff not installed; skipping (pip install -e '.[lint]')"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed; skipping (pip install -e '.[lint]')"; fi

lint-report:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.lint src/repro --contracts \
		--format json --output lint-report.json

lint-baseline:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.lint src/repro --contracts --write-baseline

# The contract sanitizer alone (what `netrs contracts` runs): CON001 mirror
# pairs, CON002 stream order, CON003 digest completeness -- docs/LINTING.md.
contracts:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.lint --contracts-only --stats

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py --benchmark-only \
		--benchmark-disable-gc --benchmark-min-rounds=3 --benchmark-warmup=off \
		--benchmark-json=benchmarks/results/bench-smoke.json

bench-profile:
	mkdir -p benchmarks/results
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.sim.bench \
		--repeats 2 --profile benchmarks/results/bench-profile.pstats

bench-compare:
	mkdir -p benchmarks/results
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.sim.bench \
		--repeats 3 --compare BENCH_8.json \
		--compare-out benchmarks/results/bench-compare.json

bench-figures:
	$(PYTHON) -m pytest benchmarks/test_bench_fig4_clients.py \
		benchmarks/test_bench_fig5_skew.py \
		benchmarks/test_bench_fig6_utilization.py \
		benchmarks/test_bench_fig7_service_time.py --benchmark-only -s
