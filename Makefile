# Convenience targets for the NetRS reproduction.

PYTHON ?= python3

.PHONY: install test test-fast test-slow ci bench bench-smoke bench-figures lint-clean help

help:
	@echo "install       editable install"
	@echo "test          full test suite (incl. slow shape assertions)"
	@echo "test-fast     fast tests only (~15 s)"
	@echo "ci            what CI runs: fast tests (see .github/workflows/ci.yml)"
	@echo "bench         all benchmarks (figures + ablations + microbench)"
	@echo "bench-smoke   engine microbenchmarks, low rounds, JSON for CI trends"
	@echo "bench-figures just the paper figures (results under benchmarks/results/)"

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-slow:
	$(PYTHON) -m pytest tests/ -m slow

ci:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py --benchmark-only \
		--benchmark-disable-gc --benchmark-min-rounds=3 --benchmark-warmup=off \
		--benchmark-json=benchmarks/results/bench-smoke.json

bench-figures:
	$(PYTHON) -m pytest benchmarks/test_bench_fig4_clients.py \
		benchmarks/test_bench_fig5_skew.py \
		benchmarks/test_bench_fig6_utilization.py \
		benchmarks/test_bench_fig7_service_time.py --benchmark-only -s
